//! Compression detection (paper App. C).
//!
//! **Delta-compression**: "analyzer simply tests whether the serialized
//! key and value inputs to map() contain numeric values. If so,
//! delta-compression can be applied to those fields." Opaque
//! serialization hides the numeric fields (the Benchmark-1 miss).
//!
//! **Direct-operation**: "analyzer first obtains a list of input
//! parameters that are actually used in map(). Input parameters for
//! which all uses are equality tests are suitable for direct-operation
//! on compressed data." Additionally, the map output key qualifies "as
//! long as the user does not require the final program output to be in
//! sorted order" (§2.1 footnote 1) — group-by behaviour only needs
//! equality.

use std::collections::HashSet;
use std::fmt;

use mr_ir::function::Program;
use mr_ir::instr::{CmpOp, Instr, ParamId, Reg};
use mr_ir::schema::FieldType;

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;

/// The DELTA optimization descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaDescriptor {
    /// Numeric fields eligible for delta encoding, in schema order.
    pub fields: Vec<String>,
}

impl fmt::Display for DeltaDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELTA on [{}]", self.fields.join(", "))
    }
}

/// Outcome of delta-compression detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Numeric fields found.
    Delta(DeltaDescriptor),
    /// The schema has no numeric fields.
    NoNumericFields,
    /// Custom serialization hides field boundaries.
    Opaque,
}

impl DeltaOutcome {
    /// Convenience accessor.
    pub fn descriptor(&self) -> Option<&DeltaDescriptor> {
        match self {
            DeltaOutcome::Delta(d) => Some(d),
            _ => None,
        }
    }
}

/// Run delta-compression detection.
pub fn find_delta(program: &Program) -> DeltaOutcome {
    let schema = &program.value_schema;
    if schema.is_opaque() {
        return DeltaOutcome::Opaque;
    }
    // Doubles delta-encode poorly and the paper's experiments only delta
    // integer-valued fields (visitDate, adRevenue, duration); restrict
    // to integer types.
    let fields: Vec<String> = schema
        .fields()
        .iter()
        .filter(|f| matches!(f.ty, FieldType::Int | FieldType::Long))
        .map(|f| f.name.clone())
        .collect();
    if fields.is_empty() {
        DeltaOutcome::NoNumericFields
    } else {
        DeltaOutcome::Delta(DeltaDescriptor { fields })
    }
}

/// The DIRECT-OPERATION descriptor: fields that can stay
/// dictionary-compressed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectDescriptor {
    /// Eligible string fields, in schema order.
    pub fields: Vec<String>,
    /// String constants compared against each field; the optimizer must
    /// rewrite them through the dictionary in the modified program copy.
    pub compared_constants: Vec<(String, Vec<String>)>,
}

impl fmt::Display for DirectDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIRECT-OP on [{}]", self.fields.join(", "))
    }
}

/// Outcome of direct-operation detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectOutcome {
    /// At least one field qualifies.
    Direct(DirectDescriptor),
    /// No field is used in equality-only fashion.
    NonePresent,
    /// Custom serialization hides field boundaries.
    Opaque,
}

impl DirectOutcome {
    /// Convenience accessor.
    pub fn descriptor(&self) -> Option<&DirectDescriptor> {
        match self {
            DirectOutcome::Direct(d) => Some(d),
            _ => None,
        }
    }
}

/// Run direct-operation detection.
///
/// A string field qualifies when **every** use of every load of that
/// field (followed through `Move` chains) is one of:
///
/// * an equality/inequality comparison (against a constant — recorded
///   for dictionary rewriting — or against a load of the same field),
/// * the *key* argument of `emit`, provided the program does not require
///   sorted final output *and* the reduce stage drops the key from the
///   final output (otherwise dictionary codes would leak into it).
///
/// Everything else (ordering comparisons, arithmetic, substring calls,
/// emitting as the value, feeding members or effects) disqualifies the
/// field.
pub fn find_direct(program: &Program) -> DirectOutcome {
    let schema = &program.value_schema;
    if schema.is_opaque() {
        return DirectOutcome::Opaque;
    }
    let func = &program.mapper;
    let cfg = Cfg::build(func);
    let rd = ReachingDefs::compute(func, &cfg);

    let mut fields = Vec::new();
    let mut compared_constants = Vec::new();
    for fd in schema.fields() {
        if fd.ty != FieldType::Str {
            continue;
        }
        // Load sites for this field.
        let loads: Vec<(usize, Reg)> = func
            .instrs
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| match i {
                Instr::GetField { dst, obj, field } if field == &fd.name => {
                    // Only loads off the value param count; loads off
                    // other records are a different class's field.
                    let from_value = rd.reaching(func, &cfg, pc, *obj).into_iter().all(|d| {
                        matches!(
                            func.instrs[d],
                            Instr::LoadParam {
                                param: ParamId::Value,
                                ..
                            }
                        )
                    });
                    from_value.then_some((pc, *dst))
                }
                _ => None,
            })
            .collect();
        if loads.is_empty() {
            continue; // unused → projection's business, not direct-op's
        }
        let mut constants: Vec<String> = Vec::new();
        if loads.iter().all(|&(pc, dst)| {
            equality_only(program, func, &cfg, &rd, pc, dst, &fd.name, &mut constants)
        }) {
            fields.push(fd.name.clone());
            constants.sort();
            constants.dedup();
            compared_constants.push((fd.name.clone(), constants));
        }
    }
    if fields.is_empty() {
        DirectOutcome::NonePresent
    } else {
        DirectOutcome::Direct(DirectDescriptor {
            fields,
            compared_constants,
        })
    }
}

/// Check that every (transitive) use of the value defined at `def_pc`
/// in register `reg` is equality-only.
#[allow(clippy::too_many_arguments)]
fn equality_only(
    program: &Program,
    func: &mr_ir::function::Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    def_pc: usize,
    reg: Reg,
    field: &str,
    constants: &mut Vec<String>,
) -> bool {
    let mut work = vec![(def_pc, reg)];
    let mut seen: HashSet<(usize, Reg)> = HashSet::new();
    while let Some((dpc, r)) = work.pop() {
        if !seen.insert((dpc, r)) {
            continue;
        }
        for (use_pc, instr) in func.instrs.iter().enumerate() {
            if !instr.uses().contains(&r) {
                continue;
            }
            // Does *this* definition reach that use?
            if !rd.reaching(func, cfg, use_pc, r).contains(&dpc) {
                continue;
            }
            match instr {
                Instr::Cmp {
                    op: _op @ (CmpOp::Eq | CmpOp::Ne),
                    lhs,
                    rhs,
                    ..
                } => {
                    // The other operand must be a constant (recorded for
                    // dictionary rewriting) or another load of the same
                    // field.
                    let other = if *lhs == r { *rhs } else { *lhs };
                    for od in rd.reaching(func, cfg, use_pc, other) {
                        match &func.instrs[od] {
                            Instr::Const { val, .. } => {
                                if let Some(s) = val.as_str() {
                                    constants.push(s.to_string());
                                } else {
                                    return false;
                                }
                            }
                            Instr::GetField { field: f2, .. } if f2 == field => {}
                            _ => return false,
                        }
                    }
                }
                Instr::Move { dst, .. } => {
                    work.push((use_pc, *dst));
                }
                Instr::Emit { key, value } => {
                    if *value == r {
                        return false; // emitted as value: reduce sees it
                    }
                    if *key == r && (program.requires_sorted_output || program.key_in_final_output)
                    {
                        // Sorted output needs the real ordering, and a
                        // key that reaches the final output would leak
                        // dictionary codes.
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::function::Program;
    use mr_ir::schema::Schema;
    use std::sync::Arc;

    fn uservisits_schema() -> Arc<Schema> {
        Schema::new(
            "UserVisits",
            vec![
                ("sourceIP", FieldType::Str),
                ("destURL", FieldType::Str),
                ("visitDate", FieldType::Long),
                ("adRevenue", FieldType::Int),
                ("duration", FieldType::Int),
            ],
        )
        .into_arc()
    }

    fn program_with(src: &str, schema: Arc<Schema>) -> Program {
        Program::new("test", parse_function(src).unwrap(), schema)
    }

    #[test]
    fn delta_detects_integer_fields() {
        let p = program_with("func map(key, value) {\n  ret\n}\n", uservisits_schema());
        let d = find_delta(&p).descriptor().cloned().unwrap();
        assert_eq!(d.fields, vec!["visitDate", "adRevenue", "duration"]);
    }

    #[test]
    fn delta_opaque_refused() {
        let schema = Arc::new(Schema::new("T", vec![("n", FieldType::Int)]).opaque());
        let p = program_with("func map(key, value) {\n  ret\n}\n", schema);
        assert_eq!(find_delta(&p), DeltaOutcome::Opaque);
    }

    #[test]
    fn delta_no_numeric() {
        let schema = Schema::new(
            "Doc",
            vec![("url", FieldType::Str), ("content", FieldType::Str)],
        )
        .into_arc();
        let p = program_with("func map(key, value) {\n  ret\n}\n", schema);
        assert_eq!(find_delta(&p), DeltaOutcome::NoNumericFields);
    }

    /// The Table-6 workload: destURL used only as the group-by emit key.
    #[test]
    fn group_by_key_is_direct_eligible() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = field r0.duration
              emit r1, r2
              ret
            }
            "#,
            uservisits_schema(),
        )
        .with_key_dropped_from_output();
        let d = find_direct(&p).descriptor().cloned().unwrap();
        assert_eq!(d.fields, vec!["destURL"]);
        // sourceIP is never loaded → not listed.
        assert!(!d.fields.contains(&"sourceIP".to_string()));
    }

    /// The Benchmark-2 shape: sourceIP is the group-by key but the
    /// reduce output contains it, so direct-operation must not apply
    /// (Table 1 reports direct-operation Not Present everywhere).
    #[test]
    fn key_in_final_output_disqualifies() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = field r0.duration
              emit r1, r2
              ret
            }
            "#,
            uservisits_schema(),
        );
        assert_eq!(find_direct(&p), DirectOutcome::NonePresent);
    }

    #[test]
    fn sorted_output_disqualifies_emit_key() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = field r0.duration
              emit r1, r2
              ret
            }
            "#,
            uservisits_schema(),
        )
        .with_key_dropped_from_output()
        .with_sorted_output();
        assert_eq!(find_direct(&p), DirectOutcome::NonePresent);
    }

    #[test]
    fn equality_against_constant_allowed_and_recorded() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = const "http://x.com"
              r3 = cmp eq r1, r2
              br r3, t, e
            t:
              r4 = field r0.duration
              r5 = const 1
              emit r5, r4
            e:
              ret
            }
            "#,
            uservisits_schema(),
        );
        let d = find_direct(&p).descriptor().cloned().unwrap();
        assert_eq!(d.fields, vec!["destURL"]);
        assert_eq!(
            d.compared_constants,
            vec![("destURL".to_string(), vec!["http://x.com".to_string()])]
        );
    }

    #[test]
    fn ordering_comparison_disqualifies() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = const "m"
              r3 = cmp lt r1, r2
              br r3, t, e
            t:
              r4 = const 1
              emit r4, r4
            e:
              ret
            }
            "#,
            uservisits_schema(),
        );
        assert_eq!(find_direct(&p), DirectOutcome::NonePresent);
    }

    #[test]
    fn substring_call_disqualifies() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = call str.len(r1)
              emit r1, r2
              ret
            }
            "#,
            uservisits_schema(),
        );
        assert_eq!(find_direct(&p), DirectOutcome::NonePresent);
    }

    #[test]
    fn emit_as_value_disqualifies() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = const 1
              emit r2, r1
              ret
            }
            "#,
            uservisits_schema(),
        );
        assert_eq!(find_direct(&p), DirectOutcome::NonePresent);
    }

    #[test]
    fn move_chains_followed() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = r1
              r3 = field r0.duration
              emit r2, r3
              ret
            }
            "#,
            uservisits_schema(),
        )
        .with_key_dropped_from_output();
        let d = find_direct(&p).descriptor().cloned().unwrap();
        assert_eq!(d.fields, vec!["destURL"]);
    }

    #[test]
    fn direct_opaque_refused() {
        let schema = Arc::new(Schema::new("T", vec![("s", FieldType::Str)]).opaque());
        let p = program_with("func map(key, value) {\n  ret\n}\n", schema);
        assert_eq!(find_direct(&p), DirectOutcome::Opaque);
    }
}
