//! Projection detection — the paper's `findProject` (Fig. 6, App. C).
//!
//! "Optimizing for projections means enumerating which fields of the
//! map()'s inputs are never used. We only care about calls to emit() and
//! control-flow decisions that lead up to emit() calls. Other reasons to
//! use inputs — log messages, debugging text, etc. — we optimize away."
//!
//! Differences from the paper's Fig. 6, both on the safe side:
//!
//! * Instead of enumerating paths, we seed the use-def DAG with every
//!   emit argument plus the condition of every branch from which an emit
//!   remains reachable — the same cond set Fig. 6 collects, without the
//!   exponential path walk. Extra conditions can only *keep* fields.
//! * Member variables are expanded: a field flowing into an emit across
//!   invocations through mapper state is kept (see
//!   [`DagOptions::expand_members`](crate::usedef::DagOptions)).
//! * Opaque serialization formats (the Benchmark-1 `AbstractTuple`)
//!   cause an explicit refusal, as does any whole-record escape.

use std::fmt;

use mr_ir::function::Program;
use mr_ir::instr::{Instr, Reg};

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;
use crate::usedef::{DagOptions, UseDef};

/// The PROJECT optimization descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectionDescriptor {
    /// Fields the map can observe on an emit-relevant chain, in schema
    /// order.
    pub used_fields: Vec<String>,
    /// Fields that can safely be dropped from the on-disk layout, in
    /// schema order.
    pub dropped_fields: Vec<String>,
}

impl fmt::Display for ProjectionDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PROJECT keep [{}] drop [{}]",
            self.used_fields.join(", "),
            self.dropped_fields.join(", ")
        )
    }
}

/// Outcome of projection analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjectOutcome {
    /// Some fields can be dropped.
    Projection(ProjectionDescriptor),
    /// Every field is (possibly) needed — nothing to gain.
    AllFieldsNeeded,
    /// The value class uses a custom serialization format whose field
    /// boundaries the analyzer cannot see (Benchmark 1's miss).
    Opaque,
    /// The map never emits; projection is moot.
    NoEmit,
}

impl ProjectOutcome {
    /// Convenience accessor.
    pub fn descriptor(&self) -> Option<&ProjectionDescriptor> {
        match self {
            ProjectOutcome::Projection(d) => Some(d),
            _ => None,
        }
    }
}

/// Run projection detection on a program's mapper.
pub fn find_project(program: &Program) -> ProjectOutcome {
    let func = &program.mapper;
    let emit_pcs = func.emit_sites();
    if emit_pcs.is_empty() {
        return ProjectOutcome::NoEmit;
    }
    if program.value_schema.is_opaque() {
        return ProjectOutcome::Opaque;
    }

    let cfg = Cfg::build(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let ud = UseDef::new(func, &cfg, &rd);

    // Blocks from which an emit is reachable (the blocks whose branch
    // conditions "lead up to emit() calls").
    let emit_reaching = blocks_reaching_emit(func, &cfg, &emit_pcs);

    let mut seeds: Vec<(usize, Reg)> = Vec::new();
    for &pc in &emit_pcs {
        if let Instr::Emit { key, value } = &func.instrs[pc] {
            seeds.push((pc, *key));
            seeds.push((pc, *value));
        }
    }
    for (bid, block) in cfg.blocks.iter().enumerate() {
        if !emit_reaching[bid] {
            continue;
        }
        let last = block.last();
        if let Instr::Br { cond, .. } = &func.instrs[last] {
            seeds.push((last, *cond));
        }
    }

    let dag = ud.collect(
        &seeds,
        DagOptions {
            expand_members: true,
        },
    );
    if dag.value_escapes {
        return ProjectOutcome::AllFieldsNeeded;
    }

    let schema = &program.value_schema;
    let mut used = Vec::new();
    let mut dropped = Vec::new();
    for fd in schema.fields() {
        if dag.value_fields.contains(&fd.name) {
            used.push(fd.name.clone());
        } else {
            dropped.push(fd.name.clone());
        }
    }
    if dropped.is_empty() {
        ProjectOutcome::AllFieldsNeeded
    } else {
        ProjectOutcome::Projection(ProjectionDescriptor {
            used_fields: used,
            dropped_fields: dropped,
        })
    }
}

/// Blocks from which some emit instruction is reachable (including the
/// blocks containing the emits).
fn blocks_reaching_emit(
    func: &mr_ir::function::Function,
    cfg: &Cfg,
    emit_pcs: &[usize],
) -> Vec<bool> {
    let _ = func;
    let mut reaching = vec![false; cfg.len()];
    let mut work: Vec<usize> = emit_pcs.iter().map(|&pc| cfg.block_of(pc)).collect();
    while let Some(b) = work.pop() {
        if reaching[b] {
            continue;
        }
        reaching[b] = true;
        for &p in &cfg.preds[b] {
            work.push(p);
        }
    }
    reaching
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::schema::{FieldType, Schema};
    use std::sync::Arc;

    fn webpage_schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    fn program_with(src: &str, schema: Arc<Schema>) -> Program {
        Program::new("test", parse_function(src).unwrap(), schema)
    }

    /// The paper's motivating example: code never examines the large
    /// `htmlContent`-style field, so it is projected away.
    #[test]
    fn unused_content_dropped() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = field r0.url
              emit r4, r1
            e:
              ret
            }
            "#,
            webpage_schema(),
        );
        let d = match find_project(&p) {
            ProjectOutcome::Projection(d) => d,
            other => panic!("expected projection, got {other:?}"),
        };
        assert_eq!(d.used_fields, vec!["url", "rank"]);
        assert_eq!(d.dropped_fields, vec!["content"]);
    }

    #[test]
    fn log_only_field_use_is_dropped() {
        // `content` feeds only a debug log — "other reasons to use
        // inputs … we optimize away".
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.content
              effect log(r1)
              r2 = field r0.rank
              emit r2, r2
              ret
            }
            "#,
            webpage_schema(),
        );
        let d = find_project(&p).descriptor().cloned().unwrap();
        assert_eq!(d.used_fields, vec!["rank"]);
        assert!(d.dropped_fields.contains(&"content".to_string()));
        assert!(d.dropped_fields.contains(&"url".to_string()));
    }

    #[test]
    fn branch_guarding_only_log_is_ignored() {
        // A branch that leads only to a side effect (no emit reachable
        // beyond what's already reachable) still gets its cond included
        // only if an emit is reachable from that block. Here the emit IS
        // reachable from the branch block, so rank stays; but content,
        // used only inside the log-arm, is dropped.
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 5
              r3 = cmp gt r1, r2
              br r3, noisy, quiet
            noisy:
              r4 = field r0.content
              effect log(r4)
              jmp quiet
            quiet:
              emit r1, r1
              ret
            }
            "#,
            webpage_schema(),
        );
        let d = find_project(&p).descriptor().cloned().unwrap();
        assert!(d.dropped_fields.contains(&"content".to_string()));
        assert!(d.used_fields.contains(&"rank".to_string()));
    }

    #[test]
    fn opaque_schema_refused() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = const "rank"
              r2 = call tuple.get_int(r0, r1)
              emit r2, r2
              ret
            }
            "#,
            Arc::new(
                Schema::new(
                    "AbstractTuple",
                    vec![("url", FieldType::Str), ("rank", FieldType::Int)],
                )
                .opaque(),
            ),
        );
        assert_eq!(find_project(&p), ProjectOutcome::Opaque);
    }

    #[test]
    fn whole_record_emit_keeps_everything() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = param key
              emit r1, r0
              ret
            }
            "#,
            webpage_schema(),
        );
        assert_eq!(find_project(&p), ProjectOutcome::AllFieldsNeeded);
    }

    #[test]
    fn all_fields_used_nothing_to_drop() {
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = field r0.rank
              r3 = field r0.content
              r4 = call str.len(r3)
              r5 = add r2, r4
              emit r1, r5
              ret
            }
            "#,
            webpage_schema(),
        );
        assert_eq!(find_project(&p), ProjectOutcome::AllFieldsNeeded);
    }

    #[test]
    fn no_emit_case() {
        let p = program_with("func map(key, value) {\n  ret\n}\n", webpage_schema());
        assert_eq!(find_project(&p), ProjectOutcome::NoEmit);
    }

    #[test]
    fn field_through_member_state_kept() {
        // rank flows into the member on one invocation and out through
        // the emit on a later one; projection must keep it even though
        // no single invocation chains rank → emit.
        let p = program_with(
            r#"
            func map(key, value) {
              member best = 0
              r0 = param value
              r1 = field r0.rank
              member best = r1
              r2 = member best
              r3 = field r0.url
              emit r3, r2
              ret
            }
            "#,
            webpage_schema(),
        );
        let d = find_project(&p).descriptor().cloned().unwrap();
        assert!(d.used_fields.contains(&"rank".to_string()));
        assert!(d.used_fields.contains(&"url".to_string()));
        assert_eq!(d.dropped_fields, vec!["content"]);
    }

    #[test]
    fn loop_body_field_uses_kept() {
        // Projection (unlike selection) handles loops fine: the DAG is
        // flow-insensitive enough to keep content.
        let p = program_with(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.content
              r2 = call text.extract_urls(r1)
              r3 = call list.len(r2)
              r4 = const 0
              r5 = const 1
            head:
              r6 = cmp lt r4, r3
              br r6, body, exit
            body:
              r7 = call list.get(r2, r4)
              emit r7, r5
              r8 = add r4, r5
              r4 = r8
              jmp head
            exit:
              ret
            }
            "#,
            webpage_schema(),
        );
        let d = find_project(&p).descriptor().cloned().unwrap();
        assert_eq!(d.used_fields, vec!["content"]);
        assert_eq!(d.dropped_fields, vec!["url", "rank"]);
    }
}
