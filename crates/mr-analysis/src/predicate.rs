//! Predicates in disjunctive normal form.
//!
//! The selection detector (Fig. 3) "constructs a conditional statement
//! in disjunctive normal form, in which there is a disjunct for each
//! unique path to an emit() statement. Each of the disjuncts contain a
//! conjunction of the conditional tests that must hold true to reach the
//! emit() through its respective path."
//!
//! Conditions arrive as `(Expr, polarity)` pairs from `conds(path)`.
//! Normalization pushes negations through `not`/`and`/`or` down to
//! comparison leaves (so range extraction sees plain comparisons), and
//! expands embedded disjunctions so the final formula really is a flat
//! OR-of-ANDs.

use std::fmt;

use mr_ir::error::IrError;
use mr_ir::instr::BinOp;
use mr_ir::value::Value;

use crate::expr::Expr;

/// A conjunction of boolean-valued expressions. An empty conjunct is
/// trivially true.
pub type Conjunct = Vec<Expr>;

/// A predicate in disjunctive normal form. No conjuncts ⇒ `false`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dnf {
    /// The disjuncts.
    pub conjuncts: Vec<Conjunct>,
}

/// Maximum number of conjuncts produced during normalization before the
/// analyzer declares the predicate too complex.
pub const MAX_CONJUNCTS: usize = 1024;

/// Error for formulas beyond the normalization budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooComplex;

impl fmt::Display for TooComplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "predicate exceeds DNF normalization budget")
    }
}

impl Dnf {
    /// The always-false predicate.
    pub fn never() -> Dnf {
        Dnf { conjuncts: vec![] }
    }

    /// The always-true predicate.
    pub fn always() -> Dnf {
        Dnf {
            conjuncts: vec![vec![]],
        }
    }

    /// True when some conjunct is empty (trivially satisfied).
    pub fn is_always_true(&self) -> bool {
        self.conjuncts.iter().any(Vec::is_empty)
    }

    /// True when there are no conjuncts.
    pub fn is_never(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// OR another DNF into this one.
    pub fn or(&mut self, other: Dnf) {
        self.conjuncts.extend(other.conjuncts);
    }

    /// Evaluate against a concrete `(key, value)`.
    pub fn eval(&self, key: &Value, value: &Value) -> Result<bool, IrError> {
        for conjunct in &self.conjuncts {
            let mut all = true;
            for pred in conjunct {
                if !pred.eval(key, value)?.is_truthy() {
                    all = false;
                    break;
                }
            }
            if all {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Light simplification: drop constant-true predicates, drop
    /// conjuncts containing constant-false predicates, deduplicate
    /// predicates within conjuncts and identical conjuncts, and collapse
    /// to [`Dnf::always`] when any conjunct becomes empty.
    pub fn simplify(mut self) -> Dnf {
        let mut out: Vec<Conjunct> = Vec::new();
        'conjuncts: for mut conj in std::mem::take(&mut self.conjuncts) {
            let mut kept: Conjunct = Vec::new();
            for pred in conj.drain(..) {
                match &pred {
                    Expr::Const(v) if v.is_truthy() => continue,
                    Expr::Const(_) => continue 'conjuncts, // false kills conjunct
                    _ => {}
                }
                if !kept.contains(&pred) {
                    kept.push(pred);
                }
            }
            if kept.is_empty() {
                return Dnf::always();
            }
            if !out.contains(&kept) {
                out.push(kept);
            }
        }
        Dnf { conjuncts: out }
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return write!(f, "false");
        }
        for (i, conj) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            if conj.is_empty() {
                write!(f, "true")?;
            } else {
                write!(f, "(")?;
                for (j, p) in conj.iter().enumerate() {
                    if j > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

/// Normalize a single condition expression with a polarity into DNF:
/// negations are pushed inward, conjunctions/disjunctions of conditions
/// are expanded, and comparison leaves absorb the negation by operator
/// inversion.
pub fn normalize(expr: &Expr, polarity: bool) -> Result<Dnf, TooComplex> {
    let dnf = match (expr, polarity) {
        (Expr::Not(inner), p) => normalize(inner, !p)?,
        (Expr::Bin(BinOp::And, a, b), true) | (Expr::Bin(BinOp::Or, a, b), false) => {
            and(normalize(a, polarity)?, normalize(b, polarity)?)?
        }
        (Expr::Bin(BinOp::Or, a, b), true) | (Expr::Bin(BinOp::And, a, b), false) => {
            let mut d = normalize(a, polarity)?;
            d.or(normalize(b, polarity)?);
            d
        }
        (Expr::Cmp(op, a, b), p) => {
            let op = if p { *op } else { op.negate() };
            Dnf {
                conjuncts: vec![vec![Expr::Cmp(op, a.clone(), b.clone())]],
            }
        }
        (Expr::Const(v), p) => {
            if v.is_truthy() == p {
                Dnf::always()
            } else {
                Dnf::never()
            }
        }
        (other, true) => Dnf {
            conjuncts: vec![vec![other.clone()]],
        },
        (other, false) => Dnf {
            conjuncts: vec![vec![Expr::Not(Box::new(other.clone()))]],
        },
    };
    if dnf.conjuncts.len() > MAX_CONJUNCTS {
        return Err(TooComplex);
    }
    Ok(dnf)
}

/// AND of two DNFs (cross product of conjuncts).
pub fn and(a: Dnf, b: Dnf) -> Result<Dnf, TooComplex> {
    if a.conjuncts.len().saturating_mul(b.conjuncts.len()) > MAX_CONJUNCTS {
        return Err(TooComplex);
    }
    let mut out = Vec::with_capacity(a.conjuncts.len() * b.conjuncts.len());
    for ca in &a.conjuncts {
        for cb in &b.conjuncts {
            let mut c = ca.clone();
            c.extend(cb.iter().cloned());
            out.push(c);
        }
    }
    Ok(Dnf { conjuncts: out })
}

/// Build the DNF of one path: the conjunction of all its (normalized)
/// conditions — the paper's `conj(conds(path))`.
pub fn conjoin_path(conds: &[(Expr, bool)]) -> Result<Dnf, TooComplex> {
    let mut acc = Dnf::always();
    for (expr, polarity) in conds {
        acc = and(acc, normalize(expr, *polarity)?)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::instr::{CmpOp, ParamId};
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};

    fn rank_gt(n: i64) -> Expr {
        Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::value_field("rank")),
            Box::new(Expr::Const(Value::Int(n))),
        )
    }

    fn webpage(rank: i64) -> Value {
        let s = Schema::new("W", vec![("rank", FieldType::Int)]).into_arc();
        record(&s, vec![rank.into()]).into()
    }

    #[test]
    fn polarity_negates_comparison() {
        let d = normalize(&rank_gt(1), false).unwrap();
        assert_eq!(d.to_string(), "((value.rank <= 1))");
    }

    #[test]
    fn and_or_expansion() {
        // (a AND b) with polarity false → !a OR !b.
        let e = Expr::Bin(BinOp::And, Box::new(rank_gt(1)), Box::new(rank_gt(10)));
        let d = normalize(&e, false).unwrap();
        assert_eq!(d.conjuncts.len(), 2);
        // With polarity true → one conjunct of two predicates.
        let d = normalize(&e, true).unwrap();
        assert_eq!(d.conjuncts.len(), 1);
        assert_eq!(d.conjuncts[0].len(), 2);
    }

    #[test]
    fn double_negation_cancels() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(rank_gt(1)))));
        let d = normalize(&e, true).unwrap();
        assert_eq!(d.to_string(), "((value.rank > 1))");
    }

    #[test]
    fn eval_on_records() {
        let mut d = normalize(&rank_gt(1), true).unwrap();
        d.or(normalize(&rank_gt(100), true).unwrap());
        assert!(d.eval(&Value::Null, &webpage(5)).unwrap());
        assert!(!d.eval(&Value::Null, &webpage(0)).unwrap());
    }

    #[test]
    fn conjoin_path_builds_conjunction() {
        let d = conjoin_path(&[(rank_gt(1), true), (rank_gt(100), false)]).unwrap();
        // rank > 1 AND rank <= 100.
        assert!(d.eval(&Value::Null, &webpage(50)).unwrap());
        assert!(!d.eval(&Value::Null, &webpage(0)).unwrap());
        assert!(!d.eval(&Value::Null, &webpage(200)).unwrap());
    }

    #[test]
    fn simplify_drops_true_and_dedupes() {
        let d = Dnf {
            conjuncts: vec![
                vec![Expr::Const(Value::Bool(true)), rank_gt(1), rank_gt(1)],
                vec![rank_gt(1)],
                vec![Expr::Const(Value::Bool(false)), rank_gt(7)],
            ],
        };
        let s = d.simplify();
        assert_eq!(s.conjuncts.len(), 1);
        assert_eq!(s.conjuncts[0].len(), 1);
    }

    #[test]
    fn simplify_collapses_to_always() {
        let d = Dnf {
            conjuncts: vec![vec![Expr::Const(Value::Bool(true))]],
        };
        assert!(d.simplify().is_always_true());
    }

    #[test]
    fn never_and_always() {
        assert!(Dnf::never().is_never());
        assert!(Dnf::always().is_always_true());
        assert!(Dnf::always().eval(&Value::Null, &Value::Null).unwrap());
        assert!(!Dnf::never().eval(&Value::Null, &Value::Null).unwrap());
        assert_eq!(Dnf::never().to_string(), "false");
        assert_eq!(Dnf::always().to_string(), "true");
    }

    #[test]
    fn complexity_budget_enforced() {
        // Chain of ORs, each AND-composed: (a1 OR a2) AND (a1 OR a2) …
        // grows as 2^k conjuncts.
        let pair = Expr::Bin(BinOp::Or, Box::new(rank_gt(1)), Box::new(rank_gt(2)));
        let mut acc = Dnf::always();
        let mut overflowed = false;
        for _ in 0..12 {
            match and(acc.clone(), normalize(&pair, true).unwrap()) {
                Ok(next) => acc = next,
                Err(TooComplex) => {
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed);
    }

    #[test]
    fn non_comparison_condition_wraps_in_not() {
        let call = Expr::Call(
            "str.contains".into(),
            vec![Expr::value_field("url"), Expr::Const(Value::str("x"))],
        );
        let d = normalize(&call, false).unwrap();
        assert!(matches!(d.conjuncts[0][0], Expr::Not(_)));
        let _ = Expr::Param(ParamId::Key); // silence unused import lint path
    }
}
