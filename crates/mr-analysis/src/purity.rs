//! The functional test — the paper's `isFunc(useDefChain)` (§3.2).
//!
//! "The functional test succeeds when all of the following hold: the use
//! depends only on map() parameters or constants, not class members or
//! other external variables; \[and\] the use-def DAG contains no calls to
//! methods which themselves may not be functional in terms of their
//! inputs."
//!
//! A failed test names its witness so Table 1 can report *why* an
//! optimization went undetected (e.g. `unknown call: ht.contains` — the
//! paper's Benchmark-4 Hashtable blind spot).

use std::fmt;

use mr_ir::stdlib::stdlib;

use crate::expr::Expr;
use crate::usedef::DagSummary;

/// Why a chain is not a pure function of the map inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonFunctional {
    /// Depends on a mapper member variable (the Fig. 2 hazard).
    MemberDependence(String),
    /// Calls a method the analyzer has no built-in knowledge of.
    UnknownCall(String),
}

impl fmt::Display for NonFunctional {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonFunctional::MemberDependence(m) => {
                write!(f, "depends on member variable `{m}`")
            }
            NonFunctional::UnknownCall(c) => write!(f, "unknown call: {c}"),
        }
    }
}

/// `isFunc` over a resolved symbolic expression.
pub fn check_expr(expr: &Expr) -> Result<(), NonFunctional> {
    if let Some(m) = expr.members().into_iter().next() {
        return Err(NonFunctional::MemberDependence(m));
    }
    let lib = stdlib();
    for call in expr.calls() {
        if !lib.is_pure(&call) {
            return Err(NonFunctional::UnknownCall(call));
        }
    }
    Ok(())
}

/// `isFunc` over a use-def DAG summary.
pub fn check_dag(dag: &DagSummary) -> Result<(), NonFunctional> {
    if let Some(m) = dag.members.iter().next() {
        return Err(NonFunctional::MemberDependence(m.clone()));
    }
    let lib = stdlib();
    for call in &dag.calls {
        if !lib.is_pure(call) {
            return Err(NonFunctional::UnknownCall(call.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::instr::CmpOp;
    use mr_ir::value::Value;

    #[test]
    fn pure_expression_passes() {
        let e = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::value_field("rank")),
            Box::new(Expr::Const(Value::Int(1))),
        );
        assert!(check_expr(&e).is_ok());
    }

    #[test]
    fn member_dependence_fails() {
        let e = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Member("numMapsRun".into())),
            Box::new(Expr::Const(Value::Int(200))),
        );
        assert_eq!(
            check_expr(&e),
            Err(NonFunctional::MemberDependence("numMapsRun".into()))
        );
    }

    #[test]
    fn whitelisted_call_passes_unknown_fails() {
        let pure = Expr::Call(
            "str.contains".into(),
            vec![Expr::value_field("url"), Expr::Const(Value::str("x"))],
        );
        assert!(check_expr(&pure).is_ok());

        let ht = Expr::Call(
            "ht.contains".into(),
            vec![Expr::value_field("t"), Expr::Const(Value::str("k"))],
        );
        assert_eq!(
            check_expr(&ht),
            Err(NonFunctional::UnknownCall("ht.contains".into()))
        );
    }

    #[test]
    fn impure_call_fails() {
        let e = Expr::Call("time.now_millis".into(), vec![]);
        assert!(matches!(check_expr(&e), Err(NonFunctional::UnknownCall(_))));
    }

    #[test]
    fn dag_checks_mirror_expr_checks() {
        let mut dag = DagSummary::default();
        assert!(check_dag(&dag).is_ok());
        dag.calls.insert("str.len".into());
        assert!(check_dag(&dag).is_ok());
        dag.calls.insert("ht.put".into());
        assert!(matches!(
            check_dag(&dag),
            Err(NonFunctional::UnknownCall(_))
        ));
        let mut dag2 = DagSummary::default();
        dag2.members.insert("sum".into());
        assert!(matches!(
            check_dag(&dag2),
            Err(NonFunctional::MemberDependence(_))
        ));
    }

    #[test]
    fn error_messages_name_the_witness() {
        assert_eq!(
            NonFunctional::UnknownCall("ht.contains".into()).to_string(),
            "unknown call: ht.contains"
        );
        assert_eq!(
            NonFunctional::MemberDependence("n".into()).to_string(),
            "depends on member variable `n`"
        );
    }
}
