//! The analyzer façade: run every detector and assemble the
//! optimization-descriptor list of paper Fig. 1.

use std::fmt;

use mr_ir::function::Program;

use crate::compress::{find_delta, find_direct, DeltaOutcome, DirectOutcome};
use crate::project::{find_project, ProjectOutcome};
use crate::select::{find_select, SelectOutcome};
use crate::sideeffect::{find_side_effects, SideEffectReport};

/// Everything the analyzer learned about one submitted program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The analyzed program's name.
    pub program_name: String,
    /// Selection detection result.
    pub selection: SelectOutcome,
    /// Projection detection result.
    pub projection: ProjectOutcome,
    /// Delta-compression detection result.
    pub delta: DeltaOutcome,
    /// Direct-operation detection result.
    pub direct: DirectOutcome,
    /// Detected (not optimized) side effects.
    pub side_effects: Vec<SideEffectReport>,
}

impl AnalysisReport {
    /// Whether any exploitable optimization was found.
    pub fn any_detected(&self) -> bool {
        matches!(self.selection, SelectOutcome::Selection(_))
            || matches!(self.projection, ProjectOutcome::Projection(_))
            || matches!(self.delta, DeltaOutcome::Delta(_))
            || matches!(self.direct, DirectOutcome::Direct(_))
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "analysis of `{}`:", self.program_name)?;
        match &self.selection {
            SelectOutcome::Selection(d) => writeln!(f, "  selection: {d}")?,
            SelectOutcome::AlwaysEmits => writeln!(f, "  selection: none (always emits)")?,
            SelectOutcome::NeverEmits => writeln!(f, "  selection: none (never emits)")?,
            SelectOutcome::Unknown(m) => writeln!(f, "  selection: undetected ({m})")?,
        }
        match &self.projection {
            ProjectOutcome::Projection(d) => writeln!(f, "  projection: {d}")?,
            ProjectOutcome::AllFieldsNeeded => {
                writeln!(f, "  projection: none (all fields needed)")?
            }
            ProjectOutcome::Opaque => {
                writeln!(f, "  projection: undetected (opaque serialization)")?
            }
            ProjectOutcome::NoEmit => writeln!(f, "  projection: none (no emit)")?,
        }
        match &self.delta {
            DeltaOutcome::Delta(d) => writeln!(f, "  delta: {d}")?,
            DeltaOutcome::NoNumericFields => writeln!(f, "  delta: none (no numeric fields)")?,
            DeltaOutcome::Opaque => writeln!(f, "  delta: undetected (opaque serialization)")?,
        }
        match &self.direct {
            DirectOutcome::Direct(d) => writeln!(f, "  direct-op: {d}")?,
            DirectOutcome::NonePresent => writeln!(f, "  direct-op: none")?,
            DirectOutcome::Opaque => writeln!(f, "  direct-op: undetected (opaque serialization)")?,
        }
        if !self.side_effects.is_empty() {
            writeln!(f, "  side effects: {} detected", self.side_effects.len())?;
        }
        Ok(())
    }
}

/// Run the complete analyzer on a program (paper §2.2 Step 1).
pub fn analyze(program: &Program) -> AnalysisReport {
    AnalysisReport {
        program_name: program.name.clone(),
        selection: find_select(program),
        projection: find_project(program),
        delta: find_delta(program),
        direct: find_direct(program),
        side_effects: find_side_effects(&program.mapper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::schema::{FieldType, Schema};

    #[test]
    fn full_report_on_paper_example() {
        let schema = Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc();
        let p = Program::new(
            "select-demo",
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.rank
                  r2 = const 1
                  r3 = cmp gt r1, r2
                  br r3, t, e
                t:
                  r4 = param key
                  emit r4, r2
                e:
                  ret
                }
                "#,
            )
            .unwrap(),
            schema,
        );
        let report = analyze(&p);
        assert!(report.any_detected());
        assert!(matches!(report.selection, SelectOutcome::Selection(_)));
        assert!(matches!(report.projection, ProjectOutcome::Projection(_)));
        assert!(matches!(report.delta, DeltaOutcome::Delta(_)));
        let text = report.to_string();
        assert!(text.contains("selection: SELECT iff"));
        assert!(text.contains("projection: PROJECT"));
    }

    #[test]
    fn nothing_detected_report() {
        let schema = Schema::new("Doc", vec![("content", FieldType::Str)]).into_arc();
        let p = Program::new(
            "noop",
            parse_function("func map(key, value) {\n  ret\n}\n").unwrap(),
            schema,
        );
        let report = analyze(&p);
        assert!(!report.any_detected());
    }
}
