//! Reaching-definitions dataflow (paper §3.1).
//!
//! "The definition of a variable at statement *d* is said to *reach* a
//! use of that variable at statement *u*, as long as *u* is reachable
//! from *d* in the CFG, and there is no intervening definition for the
//! variable between *d* and *u*."
//!
//! Implemented as the classic gen/kill bit-vector worklist over basic
//! blocks, then refined to instruction granularity on query.

use mr_ir::function::Function;
use mr_ir::instr::Reg;

use crate::cfg::Cfg;

/// A compact bitset over definition sites.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// `self |= other`; returns whether anything changed.
    fn union_in(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Reaching-definitions analysis results for one function.
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites: `def_sites[i] = (pc, reg)`.
    def_sites: Vec<(usize, Reg)>,
    /// Definition sites indexed by register.
    defs_of_reg: Vec<Vec<usize>>, // reg index -> def-site ids
    /// Per-block IN sets.
    in_sets: Vec<BitSet>,
}

impl ReachingDefs {
    /// Run the analysis.
    pub fn compute(func: &Function, cfg: &Cfg) -> ReachingDefs {
        let num_regs = func.num_regs();
        let mut def_sites: Vec<(usize, Reg)> = Vec::new();
        let mut defs_of_reg: Vec<Vec<usize>> = vec![Vec::new(); num_regs];
        for (pc, instr) in func.instrs.iter().enumerate() {
            if let Some(r) = instr.def() {
                defs_of_reg[r.0 as usize].push(def_sites.len());
                def_sites.push((pc, r));
            }
        }
        let nd = def_sites.len();
        let nb = cfg.len();

        // gen/kill per block.
        let mut gen_sets = vec![BitSet::new(nd); nb];
        let mut kill_sets = vec![BitSet::new(nd); nb];
        // Map pc -> def-site id for quick lookup.
        let mut site_at_pc = vec![usize::MAX; func.instrs.len()];
        for (id, (pc, _)) in def_sites.iter().enumerate() {
            site_at_pc[*pc] = id;
        }
        for (bid, block) in cfg.blocks.iter().enumerate() {
            for pc in block.range() {
                if let Some(r) = func.instrs[pc].def() {
                    let id = site_at_pc[pc];
                    // This def kills all other defs of r…
                    for &other in &defs_of_reg[r.0 as usize] {
                        if other != id {
                            kill_sets[bid].set(other);
                        }
                        gen_sets[bid].clear(other);
                    }
                    // …and generates itself (downward-exposed).
                    gen_sets[bid].set(id);
                    kill_sets[bid].clear(id);
                }
            }
        }

        // Worklist iteration: IN[b] = ∪ OUT[p]; OUT[b] = gen ∪ (IN − kill).
        let mut in_sets = vec![BitSet::new(nd); nb];
        let mut out_sets = vec![BitSet::new(nd); nb];
        let mut work: std::collections::VecDeque<usize> = (0..nb).collect();
        while let Some(b) = work.pop_front() {
            let mut inb = BitSet::new(nd);
            for &p in &cfg.preds[b] {
                inb.union_in(&out_sets[p]);
            }
            in_sets[b] = inb.clone();
            // OUT = gen ∪ (IN − kill)
            let mut outb = inb;
            for (w, k) in outb.words.iter_mut().zip(&kill_sets[b].words) {
                *w &= !k;
            }
            outb.union_in(&gen_sets[b]);
            if outb != out_sets[b] {
                out_sets[b] = outb;
                for &s in &cfg.succs[b] {
                    if !work.contains(&s) {
                        work.push_back(s);
                    }
                }
            }
        }

        ReachingDefs {
            def_sites,
            defs_of_reg,
            in_sets,
        }
    }

    /// The definition sites (pcs) of `reg` that reach the *use* at
    /// instruction `pc` (i.e. reach the entry of `pc`).
    pub fn reaching(&self, func: &Function, cfg: &Cfg, pc: usize, reg: Reg) -> Vec<usize> {
        let bid = cfg.block_of(pc);
        let block = cfg.blocks[bid];
        // Walk the block prefix [start, pc): the most recent local def
        // of reg shadows everything flowing in.
        let mut local: Option<usize> = None;
        for p in block.start..pc {
            if func.instrs[p].def() == Some(reg) {
                local = Some(p);
            }
        }
        if let Some(p) = local {
            return vec![p];
        }
        // Otherwise: the block-IN defs of reg, filtered to this reg.
        let reg_sites = match self.defs_of_reg.get(reg.0 as usize) {
            Some(s) => s,
            None => return vec![],
        };
        let in_set = &self.in_sets[bid];
        reg_sites
            .iter()
            .copied()
            .filter(|&id| in_set.get(id))
            .map(|id| self.def_sites[id].0)
            .collect()
    }

    /// All definition sites of `reg` anywhere in the function.
    pub fn all_defs_of(&self, reg: Reg) -> Vec<usize> {
        self.defs_of_reg
            .get(reg.0 as usize)
            .map(|ids| ids.iter().map(|&id| self.def_sites[id].0).collect())
            .unwrap_or_default()
    }

    /// Iterate the def sites (pc, reg) reaching the entry of block `bid`
    /// — exposed for diagnostics and tests.
    pub fn block_in(&self, bid: usize) -> Vec<(usize, Reg)> {
        self.in_sets[bid]
            .iter_ones()
            .map(|id| self.def_sites[id])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::instr::Reg;

    fn analyze(src: &str) -> (Function, Cfg, ReachingDefs) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        (f, cfg, rd)
    }

    #[test]
    fn straightline_latest_def_wins() {
        let (f, cfg, rd) = analyze(
            r#"
            func f(key, value) {
              r0 = const 1
              r0 = const 2
              emit r0, r0
              ret
            }
            "#,
        );
        // The use at pc 2 sees only the def at pc 1.
        assert_eq!(rd.reaching(&f, &cfg, 2, Reg(0)), vec![1]);
        assert_eq!(rd.all_defs_of(Reg(0)), vec![0, 1]);
    }

    #[test]
    fn both_branch_defs_reach_join() {
        let (f, cfg, rd) = analyze(
            r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.flag
              br r1, a, b
            a:
              r2 = const 10
              jmp join
            b:
              r2 = const 20
            join:
              emit r1, r2
              ret
            }
            "#,
        );
        // The emit at pc 6 is reached by both defs of r2 (pcs 3 and 5).
        let emit_pc = f.instrs.iter().position(|i| i.is_emit()).unwrap();
        let mut defs = rd.reaching(&f, &cfg, emit_pc, Reg(2));
        defs.sort_unstable();
        assert_eq!(defs, vec![3, 5]);
    }

    #[test]
    fn loop_def_reaches_own_condition() {
        let (f, cfg, rd) = analyze(
            r#"
            func f(key, value) {
              r0 = const 0
              r1 = const 3
            head:
              r2 = cmp lt r0, r1
              br r2, body, exit
            body:
              r3 = const 1
              r4 = add r0, r3
              r0 = r4
              jmp head
            exit:
              ret
            }
            "#,
        );
        // At the cmp (pc 2), r0 is defined both at entry (pc 0) and by
        // the loop-body move (the `r0 = r4` at pc 6).
        let mut defs = rd.reaching(&f, &cfg, 2, Reg(0));
        defs.sort_unstable();
        assert_eq!(defs, vec![0, 6]);
    }

    #[test]
    fn fig5_use_def_shape() {
        // The §2 example: the cmp's operands trace back to the field
        // read and the constant; the field read traces to the param.
        let (f, cfg, rd) = analyze(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              r4 = param key
              emit r4, r2
            exit:
              ret
            }
            "#,
        );
        assert_eq!(rd.reaching(&f, &cfg, 3, Reg(1)), vec![1]);
        assert_eq!(rd.reaching(&f, &cfg, 3, Reg(2)), vec![2]);
        assert_eq!(rd.reaching(&f, &cfg, 1, Reg(0)), vec![0]);
        // In the emit block, r2's def still reaches from B0.
        let emit_pc = 6;
        assert_eq!(rd.reaching(&f, &cfg, emit_pc, Reg(2)), vec![2]);
    }

    #[test]
    fn block_in_is_reported() {
        let (_f, cfg, rd) = analyze(
            r#"
            func f(key, value) {
              r0 = const 1
              br r0, a, a
            a:
              ret
            }
            "#,
        );
        let bid = cfg.block_of(2);
        let ins = rd.block_in(bid);
        assert!(ins.contains(&(0, Reg(0))));
    }
}
