//! # mr-analysis — the Manimal static analyzer
//!
//! This crate is the reproduction of the paper's central contribution
//! (§3, App. C): detecting relational-style data operations inside
//! compiled, unmodified `map()` functions.
//!
//! Pipeline, bottom to top:
//!
//! * [`cfg`](mod@cfg) — basic blocks and control-flow graphs (Fig. 4);
//! * [`dataflow`] — reaching definitions;
//! * [`usedef`] — use-def DAGs (`getUseDef`, Fig. 5);
//! * [`paths`] — `paths(s)` / `conds(path)` enumeration;
//! * [`expr`] — path-sensitive symbolic resolution of registers;
//! * [`predicate`] — DNF construction and normalization;
//! * [`ranges`] — index-key choice and B+Tree scan ranges;
//! * [`purity`] — the `isFunc` safety test;
//! * detectors: [`select`] (Fig. 3), [`project`] (Fig. 6),
//!   [`compress`] (delta + direct-operation), [`sideeffect`], and —
//!   beyond the paper, which defers `reduce()` analysis to future work —
//!   [`combine`], which proves reduce programs combiner-safe;
//! * [`descriptor`] — the [`analyze`] façade producing the
//!   optimization-descriptor list of Fig. 1.
//!
//! Everything here is best-effort but **safe**: "missing an optimization
//! is regrettable, but finding a false one is catastrophic." Every
//! detector either proves its descriptor from the use-def structure or
//! declines with a reason.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cfg;
pub mod combine;
pub mod compress;
pub mod dataflow;
pub mod descriptor;
pub mod expr;
pub mod paths;
pub mod predicate;
pub mod project;
pub mod purity;
pub mod ranges;
pub mod select;
pub mod sideeffect;
pub mod usedef;

pub use combine::{
    find_combine, int_only_emit_values, CombineKind, CombineMiss, CombineOutcome,
    CombinerDescriptor,
};
pub use compress::{DeltaDescriptor, DeltaOutcome, DirectDescriptor, DirectOutcome};
pub use descriptor::{analyze, AnalysisReport};
pub use expr::Expr;
pub use predicate::Dnf;
pub use project::{ProjectOutcome, ProjectionDescriptor};
pub use ranges::{Endpoint, IndexPlan, KeyRange};
pub use select::{SelectMiss, SelectOutcome, SelectionDescriptor};
