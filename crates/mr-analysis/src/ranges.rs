//! Key-range extraction: turning a selection DNF into B+Tree scan
//! ranges.
//!
//! The SELECT descriptor "includes a description of which values should
//! be indexed, plus a logical formula over these values" (paper §2.2).
//! The optimizer then needs the formula *as ranges over the indexed
//! value* so the execution fabric can scan only the relevant portion of
//! the index. The extraction over-approximates: predicates that do not
//! constrain the chosen key widen the range, never narrow it, so the
//! index scan is always a superset of the emitting records (the map
//! function still runs and applies its own tests — safety never depends
//! on range precision).

use std::cmp::Ordering;
use std::fmt;

use mr_ir::instr::{CmpOp, ParamId};
use mr_ir::value::Value;

use crate::expr::Expr;
use crate::predicate::Dnf;

/// One endpoint of a key range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Unbounded.
    Open,
    /// Inclusive bound.
    Incl(Value),
    /// Exclusive bound.
    Excl(Value),
}

/// A contiguous range of key values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Lower endpoint.
    pub low: Endpoint,
    /// Upper endpoint.
    pub high: Endpoint,
}

impl KeyRange {
    /// The full, unbounded range.
    pub fn full() -> KeyRange {
        KeyRange {
            low: Endpoint::Open,
            high: Endpoint::Open,
        }
    }

    /// The single-point range `[v, v]`.
    pub fn point(v: Value) -> KeyRange {
        KeyRange {
            low: Endpoint::Incl(v.clone()),
            high: Endpoint::Incl(v),
        }
    }

    /// Whether this is the unbounded range.
    pub fn is_full(&self) -> bool {
        self.low == Endpoint::Open && self.high == Endpoint::Open
    }

    /// Whether `v` lies within the range.
    pub fn contains(&self, v: &Value) -> bool {
        let low_ok = match &self.low {
            Endpoint::Open => true,
            Endpoint::Incl(b) => v >= b,
            Endpoint::Excl(b) => v > b,
        };
        let high_ok = match &self.high {
            Endpoint::Open => true,
            Endpoint::Incl(b) => v <= b,
            Endpoint::Excl(b) => v < b,
        };
        low_ok && high_ok
    }

    /// Intersect with another range; `None` when provably empty.
    pub fn intersect(&self, other: &KeyRange) -> Option<KeyRange> {
        let low = max_low(&self.low, &other.low);
        let high = min_high(&self.high, &other.high);
        let r = KeyRange { low, high };
        if r.is_provably_empty() {
            None
        } else {
            Some(r)
        }
    }

    fn is_provably_empty(&self) -> bool {
        match (&self.low, &self.high) {
            (Endpoint::Incl(a), Endpoint::Incl(b)) => a > b,
            (Endpoint::Incl(a), Endpoint::Excl(b))
            | (Endpoint::Excl(a), Endpoint::Incl(b))
            | (Endpoint::Excl(a), Endpoint::Excl(b)) => a >= b,
            _ => false,
        }
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            Endpoint::Open => write!(f, "(-inf")?,
            Endpoint::Incl(v) => write!(f, "[{v}")?,
            Endpoint::Excl(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.high {
            Endpoint::Open => write!(f, "+inf)"),
            Endpoint::Incl(v) => write!(f, "{v}]"),
            Endpoint::Excl(v) => write!(f, "{v})"),
        }
    }
}

fn max_low(a: &Endpoint, b: &Endpoint) -> Endpoint {
    match (a, b) {
        (Endpoint::Open, x) | (x, Endpoint::Open) => x.clone(),
        (Endpoint::Incl(x), Endpoint::Incl(y)) => {
            Endpoint::Incl(if x >= y { x.clone() } else { y.clone() })
        }
        (Endpoint::Excl(x), Endpoint::Excl(y)) => {
            Endpoint::Excl(if x >= y { x.clone() } else { y.clone() })
        }
        (Endpoint::Incl(x), Endpoint::Excl(y)) => match x.cmp(y) {
            Ordering::Greater => Endpoint::Incl(x.clone()),
            _ => Endpoint::Excl(y.clone()),
        },
        (Endpoint::Excl(x), Endpoint::Incl(y)) => match y.cmp(x) {
            Ordering::Greater => Endpoint::Incl(y.clone()),
            _ => Endpoint::Excl(x.clone()),
        },
    }
}

fn min_high(a: &Endpoint, b: &Endpoint) -> Endpoint {
    match (a, b) {
        (Endpoint::Open, x) | (x, Endpoint::Open) => x.clone(),
        (Endpoint::Incl(x), Endpoint::Incl(y)) => {
            Endpoint::Incl(if x <= y { x.clone() } else { y.clone() })
        }
        (Endpoint::Excl(x), Endpoint::Excl(y)) => {
            Endpoint::Excl(if x <= y { x.clone() } else { y.clone() })
        }
        (Endpoint::Incl(x), Endpoint::Excl(y)) => match x.cmp(y) {
            Ordering::Less => Endpoint::Incl(x.clone()),
            _ => Endpoint::Excl(y.clone()),
        },
        (Endpoint::Excl(x), Endpoint::Incl(y)) => match y.cmp(x) {
            Ordering::Less => Endpoint::Incl(y.clone()),
            _ => Endpoint::Excl(x.clone()),
        },
    }
}

/// The chosen index key plus the scan ranges implied by the DNF.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexPlan {
    /// The expression to index (evaluated per record at index-build
    /// time).
    pub key: Expr,
    /// Scan ranges, one per satisfiable disjunct, merged where they
    /// overlap and sorted by lower bound.
    pub ranges: Vec<KeyRange>,
}

impl IndexPlan {
    /// Whether the plan degenerates to a full scan.
    pub fn is_full_scan(&self) -> bool {
        self.ranges.iter().any(KeyRange::is_full)
    }
}

/// Choose an index key for `dnf` and compute its scan ranges.
///
/// Candidates are the non-constant sides of comparisons against
/// constants. The candidate constraining the most conjuncts wins;
/// ties prefer a direct field of the value parameter, then the smaller
/// expression. Returns `None` when no comparison against a constant
/// exists anywhere (nothing indexable).
pub fn extract_index_plan(dnf: &Dnf) -> Option<IndexPlan> {
    let mut candidates: Vec<Expr> = Vec::new();
    for conj in &dnf.conjuncts {
        for pred in conj {
            if let Some((key, _, _)) = as_key_constraint(pred) {
                if !candidates.contains(key) {
                    candidates.push(key.clone());
                }
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }

    let score = |cand: &Expr| -> usize {
        dnf.conjuncts
            .iter()
            .filter(|conj| {
                conj.iter()
                    .any(|p| as_key_constraint(p).is_some_and(|(k, _, _)| k == cand))
            })
            .count()
    };
    let prefers_field =
        |e: &Expr| matches!(e, Expr::Field(obj, _) if matches!(**obj, Expr::Param(ParamId::Value)));
    let best = candidates
        .into_iter()
        .max_by(|a, b| {
            score(a)
                .cmp(&score(b))
                .then_with(|| prefers_field(a).cmp(&prefers_field(b)))
                .then_with(|| b.size().cmp(&a.size()))
        })
        .expect("non-empty candidates");

    let mut ranges: Vec<KeyRange> = Vec::new();
    for conj in &dnf.conjuncts {
        let mut range = KeyRange::full();
        let mut satisfiable = true;
        for pred in conj {
            if let Some((key, op, constant)) = as_key_constraint(pred) {
                if key != &best {
                    continue;
                }
                let constraint = range_of_cmp(op, constant);
                match range.intersect(&constraint) {
                    Some(r) => range = r,
                    None => {
                        satisfiable = false;
                        break;
                    }
                }
            }
        }
        if satisfiable {
            ranges.push(range);
        }
    }
    Some(IndexPlan {
        key: best,
        ranges: merge_ranges(ranges),
    })
}

/// Decompose `pred` as `key <op> constant` (normalizing flipped
/// comparisons like `1 < v.rank`).
fn as_key_constraint(pred: &Expr) -> Option<(&Expr, CmpOp, &Value)> {
    let Expr::Cmp(op, lhs, rhs) = pred else {
        return None;
    };
    match (&**lhs, &**rhs) {
        (Expr::Const(_), Expr::Const(_)) => None,
        (key, Expr::Const(c)) => Some((key, *op, c)),
        (Expr::Const(c), key) => Some((key, op.flip(), c)),
        _ => None,
    }
}

/// Range implied by `key <op> c`. `Ne` yields the full range (the index
/// cannot express exclusion; the map re-checks).
fn range_of_cmp(op: CmpOp, c: &Value) -> KeyRange {
    match op {
        CmpOp::Eq => KeyRange::point(c.clone()),
        CmpOp::Ne => KeyRange::full(),
        CmpOp::Lt => KeyRange {
            low: Endpoint::Open,
            high: Endpoint::Excl(c.clone()),
        },
        CmpOp::Le => KeyRange {
            low: Endpoint::Open,
            high: Endpoint::Incl(c.clone()),
        },
        CmpOp::Gt => KeyRange {
            low: Endpoint::Excl(c.clone()),
            high: Endpoint::Open,
        },
        CmpOp::Ge => KeyRange {
            low: Endpoint::Incl(c.clone()),
            high: Endpoint::Open,
        },
    }
}

/// Sort ranges by lower bound and merge overlapping/adjacent ones.
fn merge_ranges(mut ranges: Vec<KeyRange>) -> Vec<KeyRange> {
    if ranges.len() <= 1 {
        return ranges;
    }
    ranges.sort_by(|a, b| cmp_low(&a.low, &b.low));
    let mut out: Vec<KeyRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(prev) if overlaps_or_touches(prev, &r) => {
                if cmp_high(&r.high, &prev.high) == Ordering::Greater {
                    prev.high = r.high;
                }
            }
            _ => out.push(r),
        }
    }
    out
}

fn cmp_low(a: &Endpoint, b: &Endpoint) -> Ordering {
    match (a, b) {
        (Endpoint::Open, Endpoint::Open) => Ordering::Equal,
        (Endpoint::Open, _) => Ordering::Less,
        (_, Endpoint::Open) => Ordering::Greater,
        (Endpoint::Incl(x), Endpoint::Incl(y)) | (Endpoint::Excl(x), Endpoint::Excl(y)) => x.cmp(y),
        (Endpoint::Incl(x), Endpoint::Excl(y)) => x.cmp(y).then(Ordering::Less),
        (Endpoint::Excl(x), Endpoint::Incl(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

fn cmp_high(a: &Endpoint, b: &Endpoint) -> Ordering {
    match (a, b) {
        (Endpoint::Open, Endpoint::Open) => Ordering::Equal,
        (Endpoint::Open, _) => Ordering::Greater,
        (_, Endpoint::Open) => Ordering::Less,
        (Endpoint::Incl(x), Endpoint::Incl(y)) | (Endpoint::Excl(x), Endpoint::Excl(y)) => x.cmp(y),
        (Endpoint::Incl(x), Endpoint::Excl(y)) => x.cmp(y).then(Ordering::Greater),
        (Endpoint::Excl(x), Endpoint::Incl(y)) => x.cmp(y).then(Ordering::Less),
    }
}

/// Conservative overlap test used during merging: ranges sorted by low
/// endpoint overlap when the earlier range's high reaches the later
/// range's low.
fn overlaps_or_touches(a: &KeyRange, b: &KeyRange) -> bool {
    match (&a.high, &b.low) {
        (Endpoint::Open, _) | (_, Endpoint::Open) => true,
        (Endpoint::Incl(h), Endpoint::Incl(l)) => h >= l,
        (Endpoint::Incl(h), Endpoint::Excl(l)) | (Endpoint::Excl(h), Endpoint::Incl(l)) => h >= l,
        (Endpoint::Excl(h), Endpoint::Excl(l)) => h > l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::normalize;

    fn rank() -> Expr {
        Expr::value_field("rank")
    }

    fn rank_cmp(op: CmpOp, n: i64) -> Expr {
        Expr::Cmp(op, Box::new(rank()), Box::new(Expr::Const(Value::Int(n))))
    }

    #[test]
    fn simple_greater_than_range() {
        let dnf = normalize(&rank_cmp(CmpOp::Gt, 1), true).unwrap();
        let plan = extract_index_plan(&dnf).unwrap();
        assert_eq!(plan.key, rank());
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].to_string(), "(1, +inf)");
        assert!(!plan.is_full_scan());
        assert!(plan.ranges[0].contains(&Value::Int(2)));
        assert!(!plan.ranges[0].contains(&Value::Int(1)));
    }

    #[test]
    fn between_intersects() {
        let d = crate::predicate::conjoin_path(&[
            (rank_cmp(CmpOp::Ge, 10), true),
            (rank_cmp(CmpOp::Lt, 20), true),
        ])
        .unwrap();
        let plan = extract_index_plan(&d).unwrap();
        assert_eq!(plan.ranges[0].to_string(), "[10, 20)");
    }

    #[test]
    fn contradictory_conjunct_dropped() {
        let d = crate::predicate::conjoin_path(&[
            (rank_cmp(CmpOp::Gt, 20), true),
            (rank_cmp(CmpOp::Lt, 10), true),
        ])
        .unwrap();
        let plan = extract_index_plan(&d).unwrap();
        assert!(plan.ranges.is_empty(), "empty intersection yields no range");
    }

    #[test]
    fn disjuncts_union_and_merge() {
        let mut d = normalize(&rank_cmp(CmpOp::Gt, 10), true).unwrap();
        d.or(normalize(&rank_cmp(CmpOp::Gt, 5), true).unwrap());
        let plan = extract_index_plan(&d).unwrap();
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].to_string(), "(5, +inf)");
    }

    #[test]
    fn disjoint_disjuncts_stay_separate() {
        let mut d = normalize(&rank_cmp(CmpOp::Eq, 1), true).unwrap();
        d.or(normalize(&rank_cmp(CmpOp::Eq, 9), true).unwrap());
        let plan = extract_index_plan(&d).unwrap();
        assert_eq!(plan.ranges.len(), 2);
        assert_eq!(plan.ranges[0].to_string(), "[1, 1]");
        assert_eq!(plan.ranges[1].to_string(), "[9, 9]");
    }

    #[test]
    fn unconstrained_disjunct_forces_full_scan() {
        let other = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::value_field("url")),
            Box::new(Expr::Const(Value::str("x"))),
        );
        let mut d = normalize(&rank_cmp(CmpOp::Gt, 1), true).unwrap();
        d.or(normalize(&other, true).unwrap());
        // `rank` constrains one conjunct, `url` the other; either key
        // choice leaves the other disjunct unconstrained → a full range
        // appears.
        let plan = extract_index_plan(&d).unwrap();
        assert!(plan.is_full_scan());
    }

    #[test]
    fn flipped_comparison_normalized() {
        // `1 < rank` must read as `rank > 1`.
        let pred = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Const(Value::Int(1))),
            Box::new(rank()),
        );
        let d = normalize(&pred, true).unwrap();
        let plan = extract_index_plan(&d).unwrap();
        assert_eq!(plan.key, rank());
        assert_eq!(plan.ranges[0].to_string(), "(1, +inf)");
    }

    #[test]
    fn no_constant_comparison_no_plan() {
        let pred = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::value_field("a")),
            Box::new(Expr::value_field("b")),
        );
        let d = normalize(&pred, true).unwrap();
        assert!(extract_index_plan(&d).is_none());
    }

    #[test]
    fn ne_widens_to_full() {
        let d = normalize(&rank_cmp(CmpOp::Ne, 5), true).unwrap();
        let plan = extract_index_plan(&d).unwrap();
        assert!(plan.is_full_scan());
    }

    #[test]
    fn range_intersection_edge_cases() {
        let a = KeyRange {
            low: Endpoint::Incl(Value::Int(5)),
            high: Endpoint::Open,
        };
        let b = KeyRange {
            low: Endpoint::Open,
            high: Endpoint::Excl(Value::Int(5)),
        };
        assert!(a.intersect(&b).is_none(), "[5,∞) ∩ (-∞,5) = ∅");
        let c = KeyRange {
            low: Endpoint::Open,
            high: Endpoint::Incl(Value::Int(5)),
        };
        assert_eq!(a.intersect(&c).unwrap().to_string(), "[5, 5]");
    }

    #[test]
    fn key_with_pure_call_supported() {
        // The Benchmark-1 shape: the indexed value is an expression,
        // tuple.get_int(value, "rank"), not a schema field.
        let key = Expr::Call(
            "tuple.get_int".into(),
            vec![Expr::Param(ParamId::Value), Expr::Const(Value::str("rank"))],
        );
        let pred = Expr::Cmp(
            CmpOp::Gt,
            Box::new(key.clone()),
            Box::new(Expr::Const(Value::Int(10))),
        );
        let d = normalize(&pred, true).unwrap();
        let plan = extract_index_plan(&d).unwrap();
        assert_eq!(plan.key, key);
        assert_eq!(plan.ranges[0].to_string(), "(10, +inf)");
    }
}
