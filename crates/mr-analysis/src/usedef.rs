//! Use-def DAGs (paper §3.1–3.2, Fig. 5).
//!
//! "`getUseDef()` starts as a single use-def chain, but for each def
//! node, analyzer treats the def as a new use and recursively obtains
//! its use-def chain, bottoming out when the uses have no more dependent
//! def statements inside the map(). … The result is a directed acyclic
//! graph that represents all the points in the map() that might
//! influence the value of the initial statement."
//!
//! The [`DagSummary`] produced here is the analyzer's working currency:
//! which member variables, library calls and value-parameter fields can
//! influence a statement, and whether the whole value record "escapes"
//! into contexts the analyzer cannot see through.

use std::collections::{BTreeSet, HashMap, HashSet};

use mr_ir::function::Function;
use mr_ir::instr::{Instr, ParamId, Reg};

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;

/// Summary of everything that can influence a set of seed uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagSummary {
    /// Definition sites included in the DAG.
    pub def_pcs: BTreeSet<usize>,
    /// Member variables read anywhere in the DAG.
    pub members: BTreeSet<String>,
    /// Library functions called anywhere in the DAG.
    pub calls: BTreeSet<String>,
    /// Fields read directly off the value parameter.
    pub value_fields: BTreeSet<String>,
    /// The whole value record flows somewhere other than a direct field
    /// read (a call argument, an emit, a comparison, …). Projection must
    /// then keep every field.
    pub value_escapes: bool,
    /// The key parameter is used.
    pub uses_key_param: bool,
}

/// Options controlling DAG construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DagOptions {
    /// When a member read appears, also pull in the use-def DAGs of
    /// every write to that member anywhere in the function. Projection
    /// needs this: a field can flow into an emit *across invocations*
    /// through member state, which the paper's intra-invocation recursion
    /// would miss.
    pub expand_members: bool,
}

/// Use-def DAG builder for one function.
pub struct UseDef<'a> {
    func: &'a Function,
    cfg: &'a Cfg,
    rd: &'a ReachingDefs,
}

/// Which parameters a register may hold (tracked through `Move` chains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MayHold {
    /// May hold the value parameter.
    pub value: bool,
    /// May hold the key parameter.
    pub key: bool,
}

impl<'a> UseDef<'a> {
    /// Create a builder.
    pub fn new(func: &'a Function, cfg: &'a Cfg, rd: &'a ReachingDefs) -> Self {
        UseDef { func, cfg, rd }
    }

    /// Which map parameters the register `reg`, as used at `pc`, may
    /// hold — following reaching definitions through `Move` chains.
    pub fn may_hold(&self, pc: usize, reg: Reg) -> MayHold {
        let mut memo: HashMap<(usize, Reg), MayHold> = HashMap::new();
        self.may_hold_inner(pc, reg, &mut memo, &mut HashSet::new())
    }

    fn may_hold_inner(
        &self,
        pc: usize,
        reg: Reg,
        memo: &mut HashMap<(usize, Reg), MayHold>,
        visiting: &mut HashSet<(usize, Reg)>,
    ) -> MayHold {
        if let Some(&m) = memo.get(&(pc, reg)) {
            return m;
        }
        if !visiting.insert((pc, reg)) {
            // Cycle through a loop: contributes nothing new on this path.
            return MayHold::default();
        }
        let mut out = MayHold::default();
        for def_pc in self.rd.reaching(self.func, self.cfg, pc, reg) {
            match &self.func.instrs[def_pc] {
                Instr::LoadParam { param, .. } => match param {
                    ParamId::Value => out.value = true,
                    ParamId::Key => out.key = true,
                },
                Instr::Move { src, .. } => {
                    let m = self.may_hold_inner(def_pc, *src, memo, visiting);
                    out.value |= m.value;
                    out.key |= m.key;
                }
                _ => {}
            }
        }
        visiting.remove(&(pc, reg));
        memo.insert((pc, reg), out);
        out
    }

    /// Build the use-def DAG summary for a set of seed uses
    /// `(use_pc, reg)` — the paper's `getUseDef` generalized to several
    /// starting statements.
    pub fn collect(&self, seeds: &[(usize, Reg)], opts: DagOptions) -> DagSummary {
        let mut summary = DagSummary::default();
        let mut work: Vec<(usize, Reg)> = seeds.to_vec();
        let mut seen_uses: HashSet<(usize, Reg)> = HashSet::new();
        let mut seen_members: HashSet<String> = HashSet::new();

        // Record how the seed itself treats parameter-holding registers:
        // the seed use is part of a statement (emit, branch, …) whose
        // context we cannot see here, so a parameter reaching a seed
        // register escapes unless that seed is consumed by GetField.
        while let Some((use_pc, reg)) = work.pop() {
            if !seen_uses.insert((use_pc, reg)) {
                continue;
            }
            for def_pc in self.rd.reaching(self.func, self.cfg, use_pc, reg) {
                if !summary.def_pcs.insert(def_pc) {
                    continue;
                }
                let instr = &self.func.instrs[def_pc];
                match instr {
                    Instr::LoadParam { param, .. } => {
                        if *param == ParamId::Key {
                            summary.uses_key_param = true;
                        }
                    }
                    Instr::GetField { obj, field, .. } => {
                        let m = self.may_hold(def_pc, *obj);
                        if m.value {
                            summary.value_fields.insert(field.clone());
                        }
                        // The object register itself is a use, but a
                        // field read is the one context that does NOT
                        // make the record escape; recurse for the
                        // non-parameter part of the chain.
                        work.push((def_pc, *obj));
                    }
                    Instr::GetMember { name, .. } => {
                        summary.members.insert(name.clone());
                        if opts.expand_members && seen_members.insert(name.clone()) {
                            for (pc, i) in self.func.instrs.iter().enumerate() {
                                if let Instr::SetMember { name: n, src } = i {
                                    if n == name {
                                        work.push((pc, *src));
                                    }
                                }
                            }
                        }
                    }
                    Instr::Call {
                        func: name, args, ..
                    } => {
                        summary.calls.insert(name.clone());
                        for a in args {
                            if self.may_hold(def_pc, *a).value {
                                summary.value_escapes = true;
                            }
                            work.push((def_pc, *a));
                        }
                    }
                    _ => {
                        for u in instr.uses() {
                            work.push((def_pc, u));
                        }
                    }
                }
            }
            // Escape check at the use itself: if this use's register may
            // hold the value record and the using instruction is not a
            // direct field read of it, the record escapes.
            let holds = self.may_hold(use_pc, reg);
            if holds.value {
                let is_field_read = matches!(
                    &self.func.instrs[use_pc],
                    Instr::GetField { obj, .. } if *obj == reg
                );
                let is_move = matches!(&self.func.instrs[use_pc], Instr::Move { .. });
                if !is_field_read && !is_move {
                    summary.value_escapes = true;
                }
            }
            if holds.key {
                summary.uses_key_param = true;
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;

    fn setup(src: &str) -> (Function, Cfg, ReachingDefs) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        (f, cfg, rd)
    }

    #[test]
    fn fields_collected_through_chain() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = param key
              emit r4, r1
            e:
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        // Seed: the branch condition at pc 4 plus the emit args at pc 7.
        let s = ud.collect(
            &[(4, Reg(3)), (7, Reg(4)), (7, Reg(1))],
            DagOptions::default(),
        );
        assert!(s.value_fields.contains("rank"));
        assert!(!s.value_escapes);
        assert!(s.uses_key_param);
        assert!(s.members.is_empty());
    }

    #[test]
    fn member_read_recorded() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              member count = 0
              r0 = member count
              r1 = const 1
              r2 = add r0, r1
              emit r2, r1
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let s = ud.collect(&[(3, Reg(2))], DagOptions::default());
        assert!(s.members.contains("count"));
    }

    #[test]
    fn member_expansion_pulls_in_field_flow() {
        // v.adRevenue flows into the member, which later feeds the emit.
        // Without expansion the field is invisible; with it, projection
        // must keep adRevenue.
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              member sum = 0
              r0 = param value
              r1 = field r0.adRevenue
              r2 = member sum
              r3 = add r2, r1
              member sum = r3
              r4 = member sum
              emit r4, r4
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let emit_pc = f.instrs.iter().position(|i| i.is_emit()).unwrap();
        let bare = ud.collect(&[(emit_pc, Reg(4))], DagOptions::default());
        assert!(!bare.value_fields.contains("adRevenue"));
        let expanded = ud.collect(
            &[(emit_pc, Reg(4))],
            DagOptions {
                expand_members: true,
            },
        );
        assert!(expanded.value_fields.contains("adRevenue"));
    }

    #[test]
    fn whole_record_emit_escapes() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = param key
              emit r1, r0
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let s = ud.collect(&[(2, Reg(1)), (2, Reg(0))], DagOptions::default());
        assert!(s.value_escapes);
    }

    #[test]
    fn record_as_call_argument_escapes() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = const "rank"
              r2 = call tuple.get_int(r0, r1)
              emit r2, r2
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let emit_pc = 3;
        let s = ud.collect(&[(emit_pc, Reg(2))], DagOptions::default());
        assert!(s.value_escapes, "tuple.get_int(value, …) hides the field");
        assert!(s.calls.contains("tuple.get_int"));
        assert!(s.value_fields.is_empty());
    }

    #[test]
    fn move_chains_tracked() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = r0
              r2 = field r1.rank
              emit r2, r2
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let s = ud.collect(&[(3, Reg(2))], DagOptions::default());
        assert!(s.value_fields.contains("rank"));
        assert!(!s.value_escapes, "moves do not count as escapes");
    }

    #[test]
    fn may_hold_both_params_on_merge() {
        let (f, cfg, rd) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = param key
              r3 = field r0.flag
              br r3, a, b
            a:
              r2 = r0
              jmp join
            b:
              r2 = r1
            join:
              emit r2, r2
              ret
            }
            "#,
        );
        let ud = UseDef::new(&f, &cfg, &rd);
        let emit_pc = f.instrs.iter().position(|i| i.is_emit()).unwrap();
        let m = ud.may_hold(emit_pc, Reg(2));
        assert!(m.value && m.key);
    }
}
