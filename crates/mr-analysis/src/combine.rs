//! Combiner-safety detection for reduce programs.
//!
//! The paper analyzes only `map()` ("we plan to examine reduce() in
//! future work", §3.2); this pass is that future work for one specific
//! question: **may the fabric fold a key's values at the map side
//! without changing the output?** The answer is yes exactly when the
//! reduce program is an algebraic aggregate — a fold of the group's
//! values with an associative, commutative operator and a unit — the
//! same way `select`/`project` answer "is this map a selection /
//! projection" by recognizing the relational shape in free-form code.
//!
//! The detector is deliberately conservative, in the analyzer's house
//! style ("missing an optimization is regrettable, but finding a false
//! one is catastrophic"): it accepts only the *canonical fold loop*
//!
//! ```text
//! func reduce(key, values) {
//!   acc = unit                      ; Const 0 (sum/count) or 1 (product)
//!   i   = 0
//!   while i < list.len(values):     ; the single branch in the cycle
//!     acc = acc ⊕ list.get(values, i)   ; or acc ⊕ 1 for count
//!     i   = i + 1
//!   emit key, acc                   ; after the loop, key unchanged
//! }
//! ```
//!
//! proven structurally from the CFG and reaching definitions, and
//! declines everything else with a witness: an emit inside the loop
//! (the `Identity` shape) is order-preserving pass-through, `⊕ = sub` /
//! `div` is non-associative, `emit list.get(values, 0)` (the `First`
//! shape) is order-dependent, a second in-loop branch makes the fold
//! conditional, and member state or side effects make invocation counts
//! observable. The engine's builtin reducers do not pass through here —
//! they declare their combiners directly
//! (`mr_engine::Builtin::combiner`); this pass exists for user-submitted
//! IR reduce programs, and its descriptor names the builtin combiner the
//! optimizer should plug in.

use std::collections::BTreeSet;
use std::fmt;

use mr_ir::function::{Function, Program};
use mr_ir::instr::{BinOp, CmpOp, Instr, ParamId, Reg};
use mr_ir::schema::FieldType;
use mr_ir::value::Value;

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;

/// The algebraic shape a combinable reduce program folds with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineKind {
    /// `acc = acc + values[i]`, unit 0 — the `Builtin::Sum` shape.
    Sum,
    /// `acc = acc + 1` per element, unit 0 — the `Builtin::Count` shape.
    Count,
    /// `acc = acc * values[i]`, unit 1. Associative and commutative,
    /// but no builtin reducer maps to it — the optimizer falls back to
    /// the plain pipeline.
    Product,
}

impl fmt::Display for CombineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineKind::Sum => f.write_str("sum"),
            CombineKind::Count => f.write_str("count"),
            CombineKind::Product => f.write_str("product"),
        }
    }
}

/// The combiner descriptor: which algebraic fold the reduce program is,
/// proven from its IR (the combine analog of the paper's Fig. 1
/// optimization descriptors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinerDescriptor {
    /// The proven fold shape.
    pub kind: CombineKind,
}

impl fmt::Display for CombinerDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COMBINE {}(values) per key", self.kind)
    }
}

/// Why combine analysis declined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineMiss {
    /// The program never emits — nothing to combine.
    NoEmit,
    /// More than one emit site; not a single-aggregate shape.
    MultipleEmits,
    /// The emit sits inside a loop (the `Identity` shape): one output
    /// per value, so map-side folding would drop records.
    EmitInLoop,
    /// The emitted value is a single group element (the `First` shape):
    /// order-dependent, so commutative folding would change it.
    OrderDependent(String),
    /// Reads or writes reducer member state — invocation counts are
    /// observable, folding changes them.
    Stateful(String),
    /// Performs side effects the fold would re-time or duplicate.
    SideEffecting,
    /// Calls something other than `list.len` / `list.get` on the group.
    UnknownCall(String),
    /// The fold operator is not associative + commutative.
    NonAssociativeOp(String),
    /// The accumulator's initial value is not the operator's unit.
    NotUnit(String),
    /// The loop is not the canonical `for i in 0..len(values)` walk
    /// (e.g. a conditional fold), so per-element coverage is unproven.
    NonCanonicalLoop(String),
    /// The emitted key is not the group key, so finishing at the map
    /// side could change it.
    KeyNotPreserved,
    /// The values the fold would combine are not proven to stay in one
    /// numeric domain. IR `add` promotes `Int + Double` to `Double`, so
    /// a sequential int/double fold is *not* associative (a wrapped
    /// `i64` prefix depends on where the first double sits) — combining
    /// is safe only when the summed values are proven integer-only.
    UnprovenValueDomain(String),
    /// Anything else that breaks the fold shape.
    NotAFold(String),
}

impl fmt::Display for CombineMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineMiss::NoEmit => f.write_str("no emit site"),
            CombineMiss::MultipleEmits => f.write_str("multiple emit sites"),
            CombineMiss::EmitInLoop => f.write_str("emits inside the loop (one output per value)"),
            CombineMiss::OrderDependent(d) => write!(f, "order-dependent: {d}"),
            CombineMiss::Stateful(m) => write!(f, "member state: {m}"),
            CombineMiss::SideEffecting => f.write_str("side effects present"),
            CombineMiss::UnknownCall(c) => write!(f, "unknown call: {c}"),
            CombineMiss::NonAssociativeOp(op) => {
                write!(f, "operator `{op}` is not associative+commutative")
            }
            CombineMiss::NotUnit(d) => write!(f, "initial accumulator is not the unit: {d}"),
            CombineMiss::NonCanonicalLoop(d) => write!(f, "non-canonical loop: {d}"),
            CombineMiss::KeyNotPreserved => f.write_str("emitted key is not the group key"),
            CombineMiss::UnprovenValueDomain(d) => {
                write!(f, "value domain unproven: {d}")
            }
            CombineMiss::NotAFold(d) => write!(f, "not a fold: {d}"),
        }
    }
}

/// Outcome of [`find_combine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineOutcome {
    /// The reduce program is a proven algebraic fold.
    Combinable(CombinerDescriptor),
    /// Analysis declined, with the witness.
    NotCombinable(CombineMiss),
}

impl CombineOutcome {
    /// Convenience: the descriptor if combining is safe.
    pub fn descriptor(&self) -> Option<&CombinerDescriptor> {
        match self {
            CombineOutcome::Combinable(d) => Some(d),
            CombineOutcome::NotCombinable(_) => None,
        }
    }
}

impl fmt::Display for CombineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineOutcome::Combinable(d) => write!(f, "{d}"),
            CombineOutcome::NotCombinable(m) => write!(f, "not combinable ({m})"),
        }
    }
}

fn miss(m: CombineMiss) -> CombineOutcome {
    CombineOutcome::NotCombinable(m)
}

/// Decide whether `reduce` — an IR function over `(key, values)` where
/// the `value` parameter is the group's value list — is combiner-safe,
/// and which algebraic fold it is.
pub fn find_combine(reduce: &Function) -> CombineOutcome {
    // Member state or side effects anywhere disqualify immediately:
    // folding changes how often reduce-side code observes them.
    if let Some((name, _)) = reduce.members.first() {
        return miss(CombineMiss::Stateful(name.clone()));
    }
    for instr in &reduce.instrs {
        match instr {
            Instr::GetMember { name, .. } | Instr::SetMember { name, .. } => {
                return miss(CombineMiss::Stateful(name.clone()))
            }
            Instr::SideEffect { .. } => return miss(CombineMiss::SideEffecting),
            Instr::Call { func, .. } if func != "list.len" && func != "list.get" => {
                return miss(CombineMiss::UnknownCall(func.clone()))
            }
            Instr::GetField { field, .. } => {
                return miss(CombineMiss::NotAFold(format!(
                    "field access `.{field}` on a group value"
                )))
            }
            _ => {}
        }
    }

    let emits = reduce.emit_sites();
    let emit_pc = match emits.as_slice() {
        [] => return miss(CombineMiss::NoEmit),
        [pc] => *pc,
        _ => return miss(CombineMiss::MultipleEmits),
    };

    let cfg = Cfg::build(reduce);
    let in_cycle = cfg.blocks_in_cycles();
    if in_cycle[cfg.block_of(emit_pc)] {
        return miss(CombineMiss::EmitInLoop);
    }
    let rd = ReachingDefs::compute(reduce, &cfg);

    let Instr::Emit { key, value } = &reduce.instrs[emit_pc] else {
        unreachable!("emit_sites returns Emit pcs");
    };

    // The emitted key must be exactly the group key.
    let key_roots = root_defs(reduce, &cfg, &rd, emit_pc, *key);
    let key_ok = !key_roots.is_empty()
        && key_roots.iter().all(|&d| {
            matches!(
                reduce.instrs[d],
                Instr::LoadParam {
                    param: ParamId::Key,
                    ..
                }
            )
        });
    if !key_ok {
        return miss(CombineMiss::KeyNotPreserved);
    }

    // The emitted value must be the accumulator of a fold: its root
    // definitions are exactly one unit constant plus one in-loop binop.
    let value_roots = root_defs(reduce, &cfg, &rd, emit_pc, *value);
    if value_roots.len() == 1 {
        let d = *value_roots.iter().next().expect("len checked");
        if let Instr::Call { func, .. } = &reduce.instrs[d] {
            if func == "list.get" {
                // `emit key, values[const]` — the First shape.
                return miss(CombineMiss::OrderDependent(
                    "emits a single group element".into(),
                ));
            }
        }
        return miss(CombineMiss::NotAFold(format!(
            "emitted value has a single non-fold definition: {}",
            reduce.instrs[d]
        )));
    }
    let mut unit_pc = None;
    let mut fold_pc = None;
    for &d in &value_roots {
        match &reduce.instrs[d] {
            Instr::Const { .. } if unit_pc.is_none() => unit_pc = Some(d),
            Instr::BinOp { .. } if fold_pc.is_none() => fold_pc = Some(d),
            other => {
                return miss(CombineMiss::NotAFold(format!(
                    "unexpected accumulator definition: {other}"
                )))
            }
        }
    }
    let (Some(unit_pc), Some(fold_pc)) = (unit_pc, fold_pc) else {
        return miss(CombineMiss::NotAFold(
            "accumulator needs one unit and one fold op".into(),
        ));
    };
    if !in_cycle[cfg.block_of(fold_pc)] {
        return miss(CombineMiss::NotAFold("fold op is not in a loop".into()));
    }

    // Associativity + commutativity of the operator.
    let Instr::BinOp { op, lhs, rhs, .. } = &reduce.instrs[fold_pc] else {
        unreachable!("matched BinOp above");
    };
    match op {
        BinOp::Add | BinOp::Mul => {}
        other => return miss(CombineMiss::NonAssociativeOp(other.to_string())),
    }

    // One operand is the accumulator φ (reaching defs = {unit, fold});
    // the other is the per-element contribution.
    let lhs_roots = root_defs(reduce, &cfg, &rd, fold_pc, *lhs);
    let rhs_roots = root_defs(reduce, &cfg, &rd, fold_pc, *rhs);
    let acc_roots: BTreeSet<usize> = [unit_pc, fold_pc].into_iter().collect();
    let elem = if lhs_roots == acc_roots {
        rhs_roots
    } else if rhs_roots == acc_roots {
        lhs_roots
    } else {
        return miss(CombineMiss::NotAFold(
            "neither fold operand is the accumulator".into(),
        ));
    };

    // Classify the element: `values[i]` (sum/product) or `1` (count).
    let [elem_pc] = elem.iter().copied().collect::<Vec<_>>()[..] else {
        return miss(CombineMiss::NotAFold(
            "fold element has multiple definitions".into(),
        ));
    };
    let unit_val = match &reduce.instrs[unit_pc] {
        Instr::Const { val, .. } => val.clone(),
        _ => unreachable!("matched Const above"),
    };
    let kind = match &reduce.instrs[elem_pc] {
        Instr::Call { func, args, .. } if func == "list.get" => {
            let [list, idx] = args[..] else {
                return miss(CombineMiss::NotAFold("malformed list.get".into()));
            };
            if !roots_are_values_param(reduce, &cfg, &rd, elem_pc, list) {
                return miss(CombineMiss::NotAFold(
                    "list.get target is not the values parameter".into(),
                ));
            }
            if let Err(m) = check_canonical_loop(reduce, &cfg, &rd, &in_cycle, elem_pc, idx) {
                return miss(m);
            }
            match op {
                BinOp::Add => CombineKind::Sum,
                BinOp::Mul => CombineKind::Product,
                _ => unreachable!("op checked above"),
            }
        }
        Instr::Const {
            val: Value::Int(1), ..
        } if *op == BinOp::Add => {
            // acc = acc + 1 — count, provided the loop walks the list.
            if let Err(m) = check_count_loop(reduce, &cfg, &rd, &in_cycle, fold_pc) {
                return miss(m);
            }
            CombineKind::Count
        }
        other => {
            return miss(CombineMiss::NotAFold(format!(
                "fold element is not values[i] or 1: {other}"
            )))
        }
    };

    // The unit must be the operator's identity, or partial folds would
    // re-apply it once per partial.
    let unit_ok = match kind {
        CombineKind::Sum | CombineKind::Count => unit_val == Value::Int(0),
        CombineKind::Product => unit_val == Value::Int(1),
    };
    if !unit_ok {
        return miss(CombineMiss::NotUnit(unit_val.to_string()));
    }

    CombineOutcome::Combinable(CombinerDescriptor { kind })
}

/// Whether every emit in `program`'s map function emits a *value*
/// proven integer: an `Int` constant, or an `Int`/`Long`-typed field
/// read off the value record. Sum/Product combiners are gated on this:
/// IR `add` promotes `Int + Double` to `Double`, so a sequential fold
/// over a mixed domain is not associative (the wrapped `i64` prefix
/// depends on where the first double sits in the sequence), and a
/// combiner could change output beyond float reassociation. Integer
/// addition — wrapping included — is fully associative, so an
/// int-proven domain is safe. Conservative on anything it cannot
/// prove.
pub fn int_only_emit_values(program: &Program) -> bool {
    let func = &program.mapper;
    let emits = func.emit_sites();
    if emits.is_empty() {
        return false;
    }
    let cfg = Cfg::build(func);
    let rd = ReachingDefs::compute(func, &cfg);
    emits.iter().all(|&pc| {
        let Instr::Emit { value, .. } = &func.instrs[pc] else {
            return false;
        };
        let roots = root_defs(func, &cfg, &rd, pc, *value);
        !roots.is_empty()
            && roots.iter().all(|&d| match &func.instrs[d] {
                Instr::Const {
                    val: Value::Int(_), ..
                } => true,
                Instr::GetField { obj, field, .. } => {
                    let obj_roots = root_defs(func, &cfg, &rd, d, *obj);
                    let from_value = !obj_roots.is_empty()
                        && obj_roots.iter().all(|&o| {
                            matches!(
                                func.instrs[o],
                                Instr::LoadParam {
                                    param: ParamId::Value,
                                    ..
                                }
                            )
                        });
                    from_value
                        && matches!(
                            program.value_schema.field(field).map(|f| f.ty),
                            Some(FieldType::Int | FieldType::Long)
                        )
                }
                _ => false,
            })
    })
}

/// Root (non-`Move`) definitions reaching `reg` at `pc`, following
/// `Move` chains transitively.
fn root_defs(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    pc: usize,
    reg: Reg,
) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut work = vec![(pc, reg)];
    while let Some((upc, ureg)) = work.pop() {
        for d in rd.reaching(func, cfg, upc, ureg) {
            if let Instr::Move { src, .. } = &func.instrs[d] {
                if seen.insert((d, *src)) {
                    work.push((d, *src));
                }
            } else {
                out.insert(d);
            }
        }
    }
    out
}

/// All root definitions of `reg` at `pc` load the `values` parameter.
fn roots_are_values_param(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    pc: usize,
    reg: Reg,
) -> bool {
    let roots = root_defs(func, cfg, rd, pc, reg);
    !roots.is_empty()
        && roots.iter().all(|&d| {
            matches!(
                func.instrs[d],
                Instr::LoadParam {
                    param: ParamId::Value,
                    ..
                }
            )
        })
}

/// Prove the loop around the fold is the canonical `for i in
/// 0..list.len(values)` walk driven by induction register family of
/// `idx` (used by `list.get(values, idx)` at `get_pc`): `idx`'s roots
/// are exactly `{Const 0, i + 1}`, the single in-cycle branch is
/// guarded by `i < list.len(values)`, and nothing else branches inside
/// the cycle (a second branch would make the fold conditional).
fn check_canonical_loop(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    in_cycle: &[bool],
    get_pc: usize,
    idx: Reg,
) -> Result<(), CombineMiss> {
    // Induction shape: i defined by {Const 0, Add(i, Const 1)}.
    let idx_roots = root_defs(func, cfg, rd, get_pc, idx);
    let mut init_ok = false;
    let mut step_ok = false;
    for &d in &idx_roots {
        match &func.instrs[d] {
            Instr::Const {
                val: Value::Int(0), ..
            } => init_ok = true,
            Instr::BinOp {
                op: BinOp::Add,
                lhs,
                rhs,
                ..
            } => {
                let l = root_defs(func, cfg, rd, d, *lhs);
                let r = root_defs(func, cfg, rd, d, *rhs);
                let one = |s: &BTreeSet<usize>| {
                    s.len() == 1
                        && s.iter().all(|&c| {
                            matches!(
                                func.instrs[c],
                                Instr::Const {
                                    val: Value::Int(1),
                                    ..
                                }
                            )
                        })
                };
                if (l == idx_roots && one(&r)) || (r == idx_roots && one(&l)) {
                    step_ok = true;
                } else {
                    return Err(CombineMiss::NonCanonicalLoop(
                        "induction step is not i + 1".into(),
                    ));
                }
            }
            other => {
                return Err(CombineMiss::NonCanonicalLoop(format!(
                    "index defined by {other}"
                )))
            }
        }
    }
    if !(init_ok && step_ok && idx_roots.len() == 2) {
        return Err(CombineMiss::NonCanonicalLoop(
            "index is not a 0-initialized unit-step induction variable".into(),
        ));
    }
    check_single_guard(func, cfg, rd, in_cycle, &idx_roots)
}

/// The loop guard, proven: the *single* in-cycle branch (a second one
/// would make the fold conditional) tests `i < list.len(values)` where
/// `i` is exactly the induction family in `idx_roots`. Returns
/// [`CombineMiss::NonCanonicalLoop`] witnesses otherwise.
fn check_single_guard(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    in_cycle: &[bool],
    idx_roots: &BTreeSet<usize>,
) -> Result<(), CombineMiss> {
    let guard_pc = single_cycle_branch(func, cfg, in_cycle)?;
    let Instr::Br {
        cond,
        then_tgt,
        else_tgt,
    } = &func.instrs[guard_pc]
    else {
        unreachable!("single_cycle_branch returns Br pcs");
    };
    // Target roles matter, not just the cycle's shape: `i < len` must
    // *continue* into the loop and exit otherwise. With the targets
    // swapped the static cycle is identical but the program emits the
    // unit immediately — a false positive this check forbids.
    if !in_cycle[cfg.block_of(*then_tgt)] || in_cycle[cfg.block_of(*else_tgt)] {
        return Err(CombineMiss::NonCanonicalLoop(
            "guard must enter the loop while `i < len` and exit otherwise".into(),
        ));
    }
    let cond_roots = root_defs(func, cfg, rd, guard_pc, *cond);
    let [cmp_pc] = cond_roots.iter().copied().collect::<Vec<_>>()[..] else {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop guard has multiple definitions".into(),
        ));
    };
    let Instr::Cmp {
        op: CmpOp::Lt,
        lhs,
        rhs,
        ..
    } = &func.instrs[cmp_pc]
    else {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop guard is not `i < len`".into(),
        ));
    };
    if root_defs(func, cfg, rd, cmp_pc, *lhs) != *idx_roots {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop guard does not test the induction variable".into(),
        ));
    }
    let len_roots = root_defs(func, cfg, rd, cmp_pc, *rhs);
    let len_ok = len_roots.len() == 1
        && len_roots.iter().all(|&d| match &func.instrs[d] {
            Instr::Call { func: f, args, .. } if f == "list.len" && args.len() == 1 => {
                roots_are_values_param(func, cfg, rd, d, args[0])
            }
            _ => false,
        });
    if !len_ok {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop bound is not list.len(values)".into(),
        ));
    }
    Ok(())
}

/// The count shape has no `list.get` to anchor the induction variable,
/// so recover it from the loop guard instead and run the same canonical
/// walk check anchored at the guard's comparison.
fn check_count_loop(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    in_cycle: &[bool],
    fold_pc: usize,
) -> Result<(), CombineMiss> {
    if !in_cycle[cfg.block_of(fold_pc)] {
        return Err(CombineMiss::NotAFold("fold op is not in the loop".into()));
    }
    let guard_pc = single_cycle_branch(func, cfg, in_cycle)?;
    let Instr::Br { cond, .. } = &func.instrs[guard_pc] else {
        unreachable!("single_cycle_branch returns Br pcs");
    };
    let cond_roots = root_defs(func, cfg, rd, guard_pc, *cond);
    let [cmp_pc] = cond_roots.iter().copied().collect::<Vec<_>>()[..] else {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop guard has multiple definitions".into(),
        ));
    };
    let Instr::Cmp {
        op: CmpOp::Lt, lhs, ..
    } = &func.instrs[cmp_pc]
    else {
        return Err(CombineMiss::NonCanonicalLoop(
            "loop guard is not `i < len`".into(),
        ));
    };
    check_canonical_loop(func, cfg, rd, in_cycle, cmp_pc, *lhs)
}

/// The pc of the single `Br` inside the cycle region; more than one
/// means the fold is conditional and coverage is unproven.
fn single_cycle_branch(
    func: &Function,
    cfg: &Cfg,
    in_cycle: &[bool],
) -> Result<usize, CombineMiss> {
    let mut branches = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !in_cycle[b] {
            continue;
        }
        for pc in block.range() {
            if matches!(func.instrs[pc], Instr::Br { .. }) {
                branches.push(pc);
            }
        }
    }
    match branches.as_slice() {
        [pc] => Ok(*pc),
        [] => Err(CombineMiss::NonCanonicalLoop("loop has no guard".into())),
        _ => Err(CombineMiss::NonCanonicalLoop(
            "extra branch inside the loop (conditional fold)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;

    fn reduce(src: &str) -> Function {
        parse_function(src).unwrap()
    }

    /// The canonical sum fold — `Builtin::Sum` written in IR.
    fn sum_src() -> &'static str {
        r#"
        func reduce(key, values) {
          r0 = param value
          r1 = call list.len(r0)
          r2 = const 0        ; acc = unit
          r3 = const 0        ; i
          r4 = const 1
        head:
          r5 = cmp lt r3, r1
          br r5, body, done
        body:
          r6 = call list.get(r0, r3)
          r7 = add r2, r6
          r2 = r7
          r8 = add r3, r4
          r3 = r8
          jmp head
        done:
          r9 = param key
          emit r9, r2
          ret
        }
        "#
    }

    #[test]
    fn sum_fold_accepted() {
        let out = find_combine(&reduce(sum_src()));
        assert_eq!(
            out,
            CombineOutcome::Combinable(CombinerDescriptor {
                kind: CombineKind::Sum
            })
        );
        assert_eq!(out.to_string(), "COMBINE sum(values) per key");
    }

    #[test]
    fn count_fold_accepted() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = call list.len(r0)
              r2 = const 0
              r3 = const 0
              r4 = const 1
            head:
              r5 = cmp lt r3, r1
              br r5, body, done
            body:
              r7 = add r2, r4
              r2 = r7
              r8 = add r3, r4
              r3 = r8
              jmp head
            done:
              r9 = param key
              emit r9, r2
              ret
            }
            "#,
        ));
        assert_eq!(
            out.descriptor().map(|d| d.kind),
            Some(CombineKind::Count),
            "{out}"
        );
    }

    #[test]
    fn product_fold_accepted_as_product() {
        let src = sum_src()
            .replace("r2 = const 0        ; acc = unit", "r2 = const 1")
            .replace("r7 = add r2, r6", "r7 = mul r2, r6");
        let out = find_combine(&reduce(&src));
        assert_eq!(out.descriptor().map(|d| d.kind), Some(CombineKind::Product));
    }

    /// `First` — emit a single element: order-dependent, rejected.
    #[test]
    fn first_shape_rejected() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = const 0
              r2 = call list.get(r0, r1)
              r3 = param key
              emit r3, r2
              ret
            }
            "#,
        ));
        assert!(
            matches!(
                out,
                CombineOutcome::NotCombinable(CombineMiss::OrderDependent(_))
            ),
            "{out}"
        );
    }

    /// `Identity` — one emit per value inside the loop: rejected.
    #[test]
    fn identity_shape_rejected() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = call list.len(r0)
              r3 = const 0
              r4 = const 1
              r9 = param key
            head:
              r5 = cmp lt r3, r1
              br r5, body, done
            body:
              r6 = call list.get(r0, r3)
              emit r9, r6
              r8 = add r3, r4
              r3 = r8
              jmp head
            done:
              ret
            }
            "#,
        ));
        assert_eq!(out, CombineOutcome::NotCombinable(CombineMiss::EmitInLoop));
    }

    /// Subtraction folds are order-dependent: rejected as
    /// non-associative.
    #[test]
    fn sub_fold_rejected_as_non_associative() {
        let src = sum_src().replace("r7 = add r2, r6", "r7 = sub r2, r6");
        let out = find_combine(&reduce(&src));
        assert_eq!(
            out,
            CombineOutcome::NotCombinable(CombineMiss::NonAssociativeOp("sub".into()))
        );
    }

    /// A non-unit initial accumulator would be re-applied once per
    /// partial: rejected.
    #[test]
    fn nonzero_unit_rejected() {
        let src = sum_src().replace("r2 = const 0        ; acc = unit", "r2 = const 5");
        let out = find_combine(&reduce(&src));
        assert!(
            matches!(out, CombineOutcome::NotCombinable(CombineMiss::NotUnit(_))),
            "{out}"
        );
    }

    /// A conditional fold (extra branch in the loop) is a *filtered*
    /// aggregate — per-element coverage unproven, rejected.
    #[test]
    fn conditional_fold_rejected() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = call list.len(r0)
              r2 = const 0
              r3 = const 0
              r4 = const 1
            head:
              r5 = cmp lt r3, r1
              br r5, body, done
            body:
              r6 = call list.get(r0, r3)
              r10 = cmp gt r6, r2
              br r10, fold, next
            fold:
              r7 = add r2, r6
              r2 = r7
            next:
              r8 = add r3, r4
              r3 = r8
              jmp head
            done:
              r9 = param key
              emit r9, r2
              ret
            }
            "#,
        ));
        assert!(
            matches!(
                out,
                CombineOutcome::NotCombinable(
                    CombineMiss::NonCanonicalLoop(_) | CombineMiss::NotAFold(_)
                )
            ),
            "{out}"
        );
    }

    /// Member state makes invocation counts observable: rejected.
    #[test]
    fn stateful_reduce_rejected() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              member calls = 0
              r0 = member calls
              r1 = const 1
              r2 = add r0, r1
              member calls = r2
              r3 = param key
              emit r3, r2
              ret
            }
            "#,
        ));
        assert!(
            matches!(out, CombineOutcome::NotCombinable(CombineMiss::Stateful(_))),
            "{out}"
        );
    }

    /// Foreign calls are opaque: rejected with the call as witness.
    #[test]
    fn unknown_call_rejected() {
        let src = sum_src().replace("call list.get(r0, r3)", "call ht.get(r0, r3)");
        let out = find_combine(&reduce(&src));
        assert_eq!(
            out,
            CombineOutcome::NotCombinable(CombineMiss::UnknownCall("ht.get".into()))
        );
    }

    /// Emitting a different key would let map-side finishing change it:
    /// rejected.
    #[test]
    fn rekeyed_emit_rejected() {
        let src = sum_src().replace("r9 = param key", "r9 = const 7");
        let out = find_combine(&reduce(&src));
        assert_eq!(
            out,
            CombineOutcome::NotCombinable(CombineMiss::KeyNotPreserved)
        );
    }

    /// The value-domain gate: Int fields and Int constants prove an
    /// integer-only emit domain; a Double field, a non-value source, or
    /// an unknown field do not.
    #[test]
    fn int_only_emit_values_checks_field_types() {
        use mr_ir::schema::{FieldType, Schema};
        let schema = Schema::new(
            "T",
            vec![
                ("name", FieldType::Str),
                ("n", FieldType::Int),
                ("big", FieldType::Long),
                ("x", FieldType::Double),
            ],
        )
        .into_arc();
        let program = |body: &str| {
            Program::new(
                "t",
                parse_function(&format!(
                    "func map(key, value) {{\n  r0 = param value\n{body}  ret\n}}\n"
                ))
                .unwrap(),
                std::sync::Arc::clone(&schema),
            )
        };
        // Int field, Long field, and Int const all prove the domain.
        for body in [
            "  r1 = field r0.name\n  r2 = field r0.n\n  emit r1, r2\n",
            "  r1 = field r0.name\n  r2 = field r0.big\n  emit r1, r2\n",
            "  r1 = field r0.name\n  r2 = const 1\n  emit r1, r2\n",
        ] {
            assert!(int_only_emit_values(&program(body)), "{body}");
        }
        // Double field, string const, computed value: unproven.
        for body in [
            "  r1 = field r0.name\n  r2 = field r0.x\n  emit r1, r2\n",
            "  r1 = field r0.name\n  r2 = const \"s\"\n  emit r1, r2\n",
            "  r1 = field r0.n\n  r2 = const 1\n  r3 = add r1, r2\n  emit r1, r3\n",
        ] {
            assert!(!int_only_emit_values(&program(body)), "{body}");
        }
        // No emits at all: nothing proven.
        assert!(!int_only_emit_values(&program("")));
    }

    /// A no-op reduce has nothing to combine.
    #[test]
    fn no_emit_rejected() {
        let out = find_combine(&reduce("func reduce(key, values) {\n  ret\n}\n"));
        assert_eq!(out, CombineOutcome::NotCombinable(CombineMiss::NoEmit));
    }

    /// Swapped guard targets leave the static cycle identical but make
    /// the program emit the unit immediately — the target-role check
    /// must reject it (a false positive here would change output).
    #[test]
    fn swapped_guard_targets_rejected() {
        let src = sum_src().replace("br r5, body, done", "br r5, done, body");
        let out = find_combine(&reduce(&src));
        assert!(
            matches!(
                out,
                CombineOutcome::NotCombinable(CombineMiss::NonCanonicalLoop(_))
            ),
            "{out}"
        );
    }

    /// Walking the list backwards (or any non-canonical induction) is
    /// declined, not guessed about.
    #[test]
    fn backwards_walk_rejected() {
        let out = find_combine(&reduce(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = call list.len(r0)
              r2 = const 0
              r4 = const 1
              r3 = sub r1, r4
            head:
              r5 = cmp lt r2, r3
              br r5, body, done
            body:
              r6 = call list.get(r0, r3)
              r7 = add r2, r6
              r2 = r7
              r8 = sub r3, r4
              r3 = r8
              jmp head
            done:
              r9 = param key
              emit r9, r2
              ret
            }
            "#,
        ));
        assert!(
            matches!(
                out,
                CombineOutcome::NotCombinable(
                    CombineMiss::NonCanonicalLoop(_) | CombineMiss::NotAFold(_)
                )
            ),
            "{out}"
        );
    }
}
