//! Symbolic expressions over `map()` inputs.
//!
//! The analyzer's output — "a logical formula over these values that
//! describes when the map() may emit data" (paper §2.2) — needs a
//! symbolic language. An [`Expr`] is a tree over the map parameters,
//! record fields, constants, operators and (pure) library calls,
//! obtained by resolving a register backwards through its definitions
//! along one concrete CFG path.
//!
//! Path-sensitive resolution is what makes the per-path conjuncts of the
//! selection DNF precise: a register assigned differently in two
//! branches resolves to the branch the path actually took, and the
//! branch condition itself is part of that path's conjunct.

use std::fmt;

use mr_ir::error::IrError;
use mr_ir::function::Function;
use mr_ir::instr::{BinOp, CmpOp, Instr, ParamId, Reg};
use mr_ir::interp::eval_binop;
use mr_ir::stdlib::stdlib;
use mr_ir::value::Value;

use crate::cfg::{BlockId, Cfg};
use crate::dataflow::ReachingDefs;

/// A symbolic expression over the map inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A compile-time constant.
    Const(Value),
    /// One of the two map parameters.
    Param(ParamId),
    /// A field read: `obj.field`.
    Field(Box<Expr>, String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A comparison (boolean-valued).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation of truthiness.
    Not(Box<Expr>),
    /// A library call.
    Call(String, Vec<Expr>),
    /// A mapper member variable — present so the analyzer can *explain*
    /// why an expression is not functional; never evaluable.
    Member(String),
}

impl Expr {
    /// Shorthand: `value.<field>`.
    pub fn value_field(name: &str) -> Expr {
        Expr::Field(Box::new(Expr::Param(ParamId::Value)), name.to_string())
    }

    /// Tree size (number of nodes); used as a tie-breaker when choosing
    /// index keys.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Param(_) | Expr::Member(_) => 1,
            Expr::Field(obj, _) => 1 + obj.size(),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => 1 + a.size() + b.size(),
            Expr::Not(a) => 1 + a.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Visit all nodes.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Field(obj, _) => obj.walk(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Not(a) => a.walk(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Member variables referenced anywhere in the tree.
    pub fn members(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Member(m) = e {
                if !out.contains(m) {
                    out.push(m.clone());
                }
            }
        });
        out
    }

    /// Library calls referenced anywhere in the tree.
    pub fn calls(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call(name, _) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Whether the expression is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(_))
    }

    /// Field names read directly off the *value* parameter, plus whether
    /// the whole value record "escapes" (is used other than through a
    /// direct field read, e.g. passed to a call or emitted whole), in
    /// which case a projection must keep every field.
    pub fn value_field_uses(&self) -> (Vec<String>, bool) {
        let mut fields = Vec::new();
        let mut escapes = false;
        fn go(e: &Expr, fields: &mut Vec<String>, escapes: &mut bool) {
            match e {
                Expr::Field(obj, name) => {
                    if matches!(**obj, Expr::Param(ParamId::Value)) {
                        if !fields.contains(name) {
                            fields.push(name.clone());
                        }
                    } else {
                        go(obj, fields, escapes);
                    }
                }
                Expr::Param(ParamId::Value) => *escapes = true,
                Expr::Param(ParamId::Key) | Expr::Const(_) | Expr::Member(_) => {}
                Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                    go(a, fields, escapes);
                    go(b, fields, escapes);
                }
                Expr::Not(a) => go(a, fields, escapes),
                Expr::Call(_, args) => {
                    for a in args {
                        go(a, fields, escapes);
                    }
                }
            }
        }
        go(self, &mut fields, &mut escapes);
        (fields, escapes)
    }

    /// Evaluate against a concrete `(key, value)` pair. Fails on
    /// [`Expr::Member`] (not a function of the inputs) and propagates
    /// library-call errors.
    pub fn eval(&self, key: &Value, value: &Value) -> Result<Value, IrError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Param(ParamId::Key) => Ok(key.clone()),
            Expr::Param(ParamId::Value) => Ok(value.clone()),
            Expr::Field(obj, name) => {
                let o = obj.eval(key, value)?;
                let rec = o.as_record().ok_or_else(|| IrError::Type {
                    context: format!("field .{name}"),
                    expected: "record",
                    got: o.kind_name(),
                })?;
                rec.get(name)
                    .cloned()
                    .map_err(|_| IrError::NoSuchField(name.clone()))
            }
            Expr::Bin(op, a, b) => {
                let (l, r) = (a.eval(key, value)?, b.eval(key, value)?);
                eval_binop(*op, &l, &r)
            }
            Expr::Cmp(op, a, b) => {
                let (l, r) = (a.eval(key, value)?, b.eval(key, value)?);
                Ok(Value::Bool(op.eval(&l, &r)))
            }
            Expr::Not(a) => Ok(Value::Bool(!a.eval(key, value)?.is_truthy())),
            Expr::Call(name, args) => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(key, value))
                    .collect::<Result<_, _>>()?;
                stdlib().eval(name, &argv)
            }
            Expr::Member(name) => Err(IrError::UnknownMember(name.clone())),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(p) => write!(f, "{p}"),
            Expr::Field(obj, name) => write!(f, "{obj}.{name}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Not(a) => write!(f, "!{a}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Member(name) => write!(f, "this.{name}"),
        }
    }
}

/// Why a register could not be resolved to a symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The value may be redefined inside a CFG cycle; first-iteration
    /// resolution along an acyclic path would be unsound.
    LoopCarried {
        /// The register involved.
        reg: Reg,
        /// The use site.
        pc: usize,
    },
    /// No definition found on the path (malformed input).
    Unbound {
        /// The register involved.
        reg: Reg,
    },
    /// The resolution tree exceeded the size budget.
    TooLarge,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::LoopCarried { reg, pc } => {
                write!(f, "{reg} at pc {pc} may be redefined inside a loop")
            }
            ResolveError::Unbound { reg } => write!(f, "{reg} has no definition on path"),
            ResolveError::TooLarge => write!(f, "expression exceeds size budget"),
        }
    }
}

/// Resolves registers to symbolic expressions along concrete CFG paths.
pub struct PathResolver<'a> {
    func: &'a Function,
    cfg: &'a Cfg,
    rd: &'a ReachingDefs,
    cyclic: Vec<bool>,
    /// Expression-size budget guarding against pathological blowup.
    max_size: usize,
}

impl<'a> PathResolver<'a> {
    /// Create a resolver for one function.
    pub fn new(func: &'a Function, cfg: &'a Cfg, rd: &'a ReachingDefs) -> Self {
        PathResolver {
            func,
            cfg,
            rd,
            cyclic: cfg.blocks_in_cycles(),
            max_size: 4096,
        }
    }

    /// Resolve `reg` as used by the instruction at `use_pc`, where
    /// `use_pc` lies in `path[path_idx]` and `path` is a simple
    /// entry-to-somewhere block path.
    pub fn resolve(
        &self,
        path: &[BlockId],
        path_idx: usize,
        use_pc: usize,
        reg: Reg,
    ) -> Result<Expr, ResolveError> {
        let mut budget = self.max_size;
        self.resolve_inner(path, path_idx, use_pc, reg, &mut budget)
    }

    fn resolve_inner(
        &self,
        path: &[BlockId],
        path_idx: usize,
        use_pc: usize,
        reg: Reg,
        budget: &mut usize,
    ) -> Result<Expr, ResolveError> {
        if *budget == 0 {
            return Err(ResolveError::TooLarge);
        }
        *budget -= 1;

        // Soundness guard: if any globally-reaching def of this use sits
        // in a cycle block, the value may depend on loop iterations that
        // a simple path does not model.
        for def_pc in self.rd.reaching(self.func, self.cfg, use_pc, reg) {
            if self.cyclic[self.cfg.block_of(def_pc)] {
                return Err(ResolveError::LoopCarried { reg, pc: use_pc });
            }
        }

        // Walk backwards along the path for the most recent definition.
        let (def_idx, def_pc) = self
            .find_def_backwards(path, path_idx, use_pc, reg)
            .ok_or(ResolveError::Unbound { reg })?;

        let instr = &self.func.instrs[def_pc];
        let sub = |r: Reg, b: &mut usize| self.resolve_inner(path, def_idx, def_pc, r, b);
        Ok(match instr {
            Instr::Const { val, .. } => Expr::Const(val.clone()),
            Instr::Move { src, .. } => sub(*src, budget)?,
            Instr::LoadParam { param, .. } => Expr::Param(*param),
            Instr::GetField { obj, field, .. } => {
                Expr::Field(Box::new(sub(*obj, budget)?), field.clone())
            }
            Instr::BinOp { op, lhs, rhs, .. } => Expr::Bin(
                *op,
                Box::new(sub(*lhs, budget)?),
                Box::new(sub(*rhs, budget)?),
            ),
            Instr::Cmp { op, lhs, rhs, .. } => Expr::Cmp(
                *op,
                Box::new(sub(*lhs, budget)?),
                Box::new(sub(*rhs, budget)?),
            ),
            Instr::Not { src, .. } => Expr::Not(Box::new(sub(*src, budget)?)),
            Instr::Call { func, args, .. } => {
                let mut resolved = Vec::with_capacity(args.len());
                for a in args {
                    resolved.push(sub(*a, budget)?);
                }
                Expr::Call(func.clone(), resolved)
            }
            Instr::GetMember { name, .. } => Expr::Member(name.clone()),
            // Remaining instructions never define a register.
            _ => unreachable!("non-defining instruction found as definition"),
        })
    }

    /// Most recent definition of `reg` strictly before `use_pc`, walking
    /// the current block's prefix then earlier path blocks in full.
    fn find_def_backwards(
        &self,
        path: &[BlockId],
        path_idx: usize,
        use_pc: usize,
        reg: Reg,
    ) -> Option<(usize, usize)> {
        // Current block: [start, use_pc).
        let block = self.cfg.blocks[path[path_idx]];
        for pc in (block.start..use_pc.min(block.end)).rev() {
            if self.func.instrs[pc].def() == Some(reg) {
                return Some((path_idx, pc));
            }
        }
        // Earlier blocks, whole ranges.
        for idx in (0..path_idx).rev() {
            let b = self.cfg.blocks[path[idx]];
            for pc in b.range().rev() {
                if self.func.instrs[pc].def() == Some(reg) {
                    return Some((idx, pc));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};

    fn setup(src: &str) -> (Function, Cfg) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::build(&f);
        (f, cfg)
    }

    #[test]
    fn resolve_simple_condition() {
        let (f, cfg) = setup(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              r4 = param key
              emit r4, r2
            exit:
              ret
            }
            "#,
        );
        let rd = ReachingDefs::compute(&f, &cfg);
        let resolver = PathResolver::new(&f, &cfg, &rd);
        // Resolve the branch condition r3 at the br (pc 4) on the path
        // [B0].
        let e = resolver.resolve(&[0], 0, 4, Reg(3)).unwrap();
        assert_eq!(e.to_string(), "(value.rank > 1)");
        let (fields, escapes) = e.value_field_uses();
        assert_eq!(fields, vec!["rank"]);
        assert!(!escapes);
    }

    #[test]
    fn path_sensitive_resolution_picks_branch_def() {
        let (f, cfg) = setup(
            r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.flag
              br r1, a, b
            a:
              r2 = const 10
              jmp join
            b:
              r2 = const 20
            join:
              emit r1, r2
              ret
            }
            "#,
        );
        let rd = ReachingDefs::compute(&f, &cfg);
        let resolver = PathResolver::new(&f, &cfg, &rd);
        let emit_pc = f.instrs.iter().position(|i| i.is_emit()).unwrap();
        let join = cfg.block_of(emit_pc);
        let a = cfg.block_of(3);
        let b = cfg.block_of(5);
        let via_a = resolver.resolve(&[0, a, join], 2, emit_pc, Reg(2)).unwrap();
        let via_b = resolver.resolve(&[0, b, join], 2, emit_pc, Reg(2)).unwrap();
        assert_eq!(via_a, Expr::Const(Value::Int(10)));
        assert_eq!(via_b, Expr::Const(Value::Int(20)));
    }

    #[test]
    fn member_resolves_to_member_node() {
        let (f, cfg) = setup(
            r#"
            func f(key, value) {
              member count = 0
              r0 = member count
              r1 = const 5
              r2 = cmp gt r0, r1
              br r2, t, e
            t:
              emit r0, r1
            e:
              ret
            }
            "#,
        );
        let rd = ReachingDefs::compute(&f, &cfg);
        let resolver = PathResolver::new(&f, &cfg, &rd);
        let e = resolver.resolve(&[0], 0, 3, Reg(2)).unwrap();
        assert_eq!(e.to_string(), "(this.count > 5)");
        assert_eq!(e.members(), vec!["count"]);
    }

    #[test]
    fn loop_carried_rejected() {
        let (f, cfg) = setup(
            r#"
            func f(key, value) {
              r0 = const 0
              r1 = const 3
            head:
              r2 = cmp lt r0, r1
              br r2, body, exit
            body:
              r3 = const 1
              r4 = add r0, r3
              r0 = r4
              jmp head
            exit:
              ret
            }
            "#,
        );
        let rd = ReachingDefs::compute(&f, &cfg);
        let resolver = PathResolver::new(&f, &cfg, &rd);
        let head = cfg.block_of(2);
        // Resolving the loop condition must fail: r0 is redefined in the
        // loop body.
        let err = resolver.resolve(&[0, head], 1, 2, Reg(2)).unwrap_err();
        assert!(matches!(err, ResolveError::LoopCarried { .. }));
    }

    #[test]
    fn expr_eval_matches_interpreter_semantics() {
        let schema = Schema::new("W", vec![("rank", FieldType::Int)]).into_arc();
        let e = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::value_field("rank")),
            Box::new(Expr::Const(Value::Int(1))),
        );
        let hi: Value = record(&schema, vec![5.into()]).into();
        let lo: Value = record(&schema, vec![0.into()]).into();
        assert_eq!(e.eval(&Value::Null, &hi).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&Value::Null, &lo).unwrap(), Value::Bool(false));
    }

    #[test]
    fn eval_member_fails() {
        let e = Expr::Member("x".into());
        assert!(e.eval(&Value::Null, &Value::Null).is_err());
    }

    #[test]
    fn call_resolution_and_eval() {
        let (f, cfg) = setup(
            r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = const ".html"
              r3 = call str.ends_with(r1, r2)
              br r3, t, e
            t:
              emit r1, r2
            e:
              ret
            }
            "#,
        );
        let rd = ReachingDefs::compute(&f, &cfg);
        let resolver = PathResolver::new(&f, &cfg, &rd);
        let e = resolver.resolve(&[0], 0, 4, Reg(3)).unwrap();
        assert_eq!(e.to_string(), "str.ends_with(value.url, \".html\")");
        assert_eq!(e.calls(), vec!["str.ends_with"]);

        let schema = Schema::new("P", vec![("url", FieldType::Str)]).into_arc();
        let v: Value = record(&schema, vec!["a.html".into()]).into();
        assert_eq!(e.eval(&Value::Null, &v).unwrap(), Value::Bool(true));
    }

    #[test]
    fn whole_value_escape_detected() {
        let e = Expr::Call(
            "tuple.get_int".into(),
            vec![Expr::Param(ParamId::Value), Expr::Const(Value::str("rank"))],
        );
        let (fields, escapes) = e.value_field_uses();
        assert!(fields.is_empty());
        assert!(escapes, "record passed whole to a call must escape");
    }

    #[test]
    fn size_and_walk() {
        let e = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::value_field("rank")),
            Box::new(Expr::Const(Value::Int(1))),
        );
        assert_eq!(e.size(), 4);
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }
}
