//! Selection detection — the paper's `findSelect` (Fig. 3, §3.2).
//!
//! "The primary goal is to compute a logical formula over map()'s
//! variables and input parameters that evaluates to true if and only if
//! the function emits a tuple."
//!
//! The implementation follows Fig. 3: for every emit site, enumerate the
//! simple CFG paths reaching it, take the conjunction of the (polarity-
//! adjusted) conditions along each path, and OR the conjunctions
//! together. Every condition — and, beyond Fig. 3 but demanded by the
//! §3.2 prose ("a functional chain from input parameters to
//! tuple-emission"), every emitted key/value — must pass `isFunc`;
//! otherwise the program is reported unoptimizable with the witness.
//!
//! Loop soundness: per-path symbolic resolution is valid only for values
//! that cannot be redefined inside a CFG cycle. The resolver enforces
//! this; any violation surfaces as [`SelectMiss::LoopCarried`].

use std::fmt;

use mr_ir::function::Program;

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;
use crate::expr::{Expr, PathResolver, ResolveError};
use crate::paths::{conds_on_path, paths_to, PathError};
use crate::predicate::{conjoin_path, Dnf, TooComplex};
use crate::purity::{check_dag, check_expr, NonFunctional};
use crate::ranges::{extract_index_plan, IndexPlan};
use crate::usedef::{DagOptions, UseDef};

/// Default cap on simple paths per emit site.
pub const DEFAULT_PATH_CAP: usize = 512;

/// The SELECT optimization descriptor (paper Fig. 1: label + indexed
/// values + logical formula).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionDescriptor {
    /// Emits happen iff this formula holds.
    pub dnf: Dnf,
    /// Indexable key and scan ranges, when the formula admits one.
    pub plan: Option<IndexPlan>,
}

impl SelectionDescriptor {
    /// Whether an index would actually skip records (a key was found and
    /// at least one range is narrower than a full scan).
    pub fn index_useful(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| !p.is_full_scan())
    }
}

impl fmt::Display for SelectionDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT iff {}", self.dnf)?;
        if let Some(plan) = &self.plan {
            write!(f, "  [index on {} ranges:", plan.key)?;
            for r in &plan.ranges {
                write!(f, " {r}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Why selection analysis declined to produce a descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectMiss {
    /// A condition or emitted value failed `isFunc`.
    NotFunctional(NonFunctional),
    /// A condition or emitted value may be redefined inside a loop.
    LoopCarried {
        /// Human-readable witness.
        detail: String,
    },
    /// Path enumeration exceeded its budget.
    TooManyPaths,
    /// DNF normalization exceeded its budget.
    FormulaTooComplex,
}

impl fmt::Display for SelectMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectMiss::NotFunctional(n) => write!(f, "{n}"),
            SelectMiss::LoopCarried { detail } => write!(f, "loop-carried value: {detail}"),
            SelectMiss::TooManyPaths => write!(f, "too many control-flow paths"),
            SelectMiss::FormulaTooComplex => write!(f, "predicate too complex"),
        }
    }
}

/// Outcome of `findSelect`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectOutcome {
    /// A non-trivial emit predicate was found.
    Selection(SelectionDescriptor),
    /// The map emits on every invocation — no selection present.
    AlwaysEmits,
    /// The map contains no reachable emit — degenerate program.
    NeverEmits,
    /// Analysis declined (the paper's "return {}" branch), with the
    /// reason.
    Unknown(SelectMiss),
}

impl SelectOutcome {
    /// Convenience: the descriptor if a selection was found.
    pub fn descriptor(&self) -> Option<&SelectionDescriptor> {
        match self {
            SelectOutcome::Selection(d) => Some(d),
            _ => None,
        }
    }
}

/// Run selection detection on a program's mapper.
pub fn find_select(program: &Program) -> SelectOutcome {
    find_select_with_cap(program, DEFAULT_PATH_CAP)
}

/// [`find_select`] with an explicit path cap (exposed for tests).
pub fn find_select_with_cap(program: &Program, path_cap: usize) -> SelectOutcome {
    let func = &program.mapper;
    let emit_pcs = func.emit_sites();
    if emit_pcs.is_empty() {
        return SelectOutcome::NeverEmits;
    }

    let cfg = Cfg::build(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let resolver = PathResolver::new(func, &cfg, &rd);
    let usedef = UseDef::new(func, &cfg, &rd);
    // When path-sensitive resolution fails (loop-carried values), fall
    // back to the flow-insensitive use-def DAG to extract a more
    // informative isFunc witness — e.g. Benchmark 4's Hashtable call
    // sits inside the same loop that defeats resolution, and the
    // Hashtable is the reason worth reporting.
    let miss_of = |use_pc: usize, reg: mr_ir::instr::Reg, fallback: SelectMiss| -> SelectMiss {
        let dag = usedef.collect(&[(use_pc, reg)], DagOptions::default());
        match check_dag(&dag) {
            Err(nf) => SelectMiss::NotFunctional(nf),
            Ok(()) => fallback,
        }
    };

    let mut dnf = Dnf::never();
    let mut any_reachable = false;
    // Misses are collected (not early-returned) so the *most
    // informative* witness is reported: an unknown call (the paper's
    // Hashtable blind spot) beats a loop-carried value, which beats
    // budget overruns.
    let mut misses: Vec<SelectMiss> = Vec::new();

    // Group emit sites by block: paths are a property of the block.
    let mut emit_blocks: Vec<(usize, Vec<usize>)> = Vec::new();
    for pc in emit_pcs {
        let b = cfg.block_of(pc);
        match emit_blocks.iter_mut().find(|(blk, _)| *blk == b) {
            Some((_, pcs)) => pcs.push(pc),
            None => emit_blocks.push((b, vec![pc])),
        }
    }

    for (block, pcs_in_block) in emit_blocks {
        let paths = match paths_to(&cfg, block, path_cap) {
            Ok(p) => p,
            Err(PathError::TooManyPaths { .. }) => {
                return SelectOutcome::Unknown(SelectMiss::TooManyPaths)
            }
        };
        if paths.is_empty() {
            continue; // unreachable emit
        }
        any_reachable = true;

        for path in &paths {
            let conds = conds_on_path(func, &cfg, path);
            // Resolve every condition to a symbolic expression.
            let mut resolved: Vec<(Expr, bool)> = Vec::with_capacity(conds.len());
            for c in &conds {
                let idx = path
                    .iter()
                    .position(|&b| b == cfg.block_of(c.br_pc))
                    .expect("branch block lies on its own path");
                match resolver.resolve(path, idx, c.br_pc, c.cond) {
                    Ok(e) => resolved.push((e, c.polarity)),
                    Err(e) => misses.push(miss_of(c.br_pc, c.cond, resolve_miss(e))),
                }
            }
            // isFunc on every condition (Fig. 3 lines 8–11).
            for (e, _) in &resolved {
                if let Err(nf) = check_expr(e) {
                    misses.push(SelectMiss::NotFunctional(nf));
                }
            }
            // isFunc on the emitted key/value (the §3.2 "functional
            // chain from input parameters to tuple-emission").
            let last_idx = path.len() - 1;
            for &emit_pc in &pcs_in_block {
                if let mr_ir::instr::Instr::Emit { key, value } = &func.instrs[emit_pc] {
                    for reg in [*key, *value] {
                        match resolver.resolve(path, last_idx, emit_pc, reg) {
                            Ok(e) => {
                                if let Err(nf) = check_expr(&e) {
                                    misses.push(SelectMiss::NotFunctional(nf));
                                }
                            }
                            Err(e) => misses.push(miss_of(emit_pc, reg, resolve_miss(e))),
                        }
                    }
                }
            }
            // dnf ← dnf OR conj(conds(path)).
            match conjoin_path(&resolved) {
                Ok(piece) => dnf.or(piece),
                Err(TooComplex) => misses.push(SelectMiss::FormulaTooComplex),
            }
        }
    }

    if !misses.is_empty() {
        return SelectOutcome::Unknown(best_miss(misses));
    }
    if !any_reachable {
        return SelectOutcome::NeverEmits;
    }
    let dnf = dnf.simplify();
    if dnf.is_always_true() {
        return SelectOutcome::AlwaysEmits;
    }
    if dnf.is_never() {
        return SelectOutcome::NeverEmits;
    }
    let plan = extract_index_plan(&dnf);
    SelectOutcome::Selection(SelectionDescriptor { dnf, plan })
}

/// Pick the most informative miss to report.
fn best_miss(misses: Vec<SelectMiss>) -> SelectMiss {
    let rank = |m: &SelectMiss| match m {
        SelectMiss::NotFunctional(_) => 0,
        SelectMiss::FormulaTooComplex => 1,
        SelectMiss::TooManyPaths => 2,
        SelectMiss::LoopCarried { .. } => 3,
    };
    misses
        .into_iter()
        .min_by_key(rank)
        .expect("non-empty misses")
}

fn resolve_miss(e: ResolveError) -> SelectMiss {
    match e {
        ResolveError::LoopCarried { reg, pc } => SelectMiss::LoopCarried {
            detail: format!("{reg} at pc {pc}"),
        },
        ResolveError::Unbound { reg } => SelectMiss::LoopCarried {
            detail: format!("{reg} unbound on path"),
        },
        ResolveError::TooLarge => SelectMiss::FormulaTooComplex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_ir::value::Value;
    use std::sync::Arc;

    fn webpage_schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    fn program(src: &str) -> Program {
        Program::new("test", parse_function(src).unwrap(), webpage_schema())
    }

    /// The paper's §2 running example.
    #[test]
    fn paper_example_detected() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              r4 = param key
              emit r4, r2
            exit:
              ret
            }
            "#,
        );
        let out = find_select(&p);
        let d = out.descriptor().expect("selection must be found");
        assert_eq!(d.dnf.to_string(), "((value.rank > 1))");
        assert!(d.index_useful());
        let plan = d.plan.as_ref().unwrap();
        assert_eq!(plan.key.to_string(), "value.rank");
        assert_eq!(plan.ranges[0].to_string(), "(1, +inf)");
    }

    /// The paper's Fig. 2: member-dependent control flow is unsafe.
    #[test]
    fn fig2_member_dependence_rejected() {
        let p = program(
            r#"
            func map(key, value) {
              member numMapsRun = 0
              r0 = member numMapsRun
              r1 = const 1
              r2 = add r0, r1
              member numMapsRun = r2
              r3 = param value
              r4 = field r3.rank
              r5 = cmp gt r4, r1
              r6 = const 200
              r7 = cmp gt r2, r6
              r8 = or r5, r7
              br r8, t, e
            t:
              r9 = param key
              emit r9, r1
            e:
              ret
            }
            "#,
        );
        match find_select(&p) {
            SelectOutcome::Unknown(SelectMiss::NotFunctional(NonFunctional::MemberDependence(
                m,
            ))) => assert_eq!(m, "numMapsRun"),
            other => panic!("expected member-dependence rejection, got {other:?}"),
        }
    }

    #[test]
    fn unconditional_emit_is_always() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param key
              r1 = const 1
              emit r0, r1
              ret
            }
            "#,
        );
        assert_eq!(find_select(&p), SelectOutcome::AlwaysEmits);
    }

    #[test]
    fn no_emit_is_never() {
        let p = program("func map(key, value) {\n  ret\n}\n");
        assert_eq!(find_select(&p), SelectOutcome::NeverEmits);
    }

    #[test]
    fn unreachable_emit_is_never() {
        let p = program(
            r#"
            func map(key, value) {
              jmp end
            dead:
              r0 = const 1
              emit r0, r0
            end:
              ret
            }
            "#,
        );
        assert_eq!(find_select(&p), SelectOutcome::NeverEmits);
    }

    /// Two emit sites on different branches OR together.
    #[test]
    fn multiple_emits_build_disjunction() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 100
              r3 = cmp gt r1, r2
              br r3, hi, next
            hi:
              emit r1, r2
              jmp exit
            next:
              r4 = const 2
              r5 = cmp lt r1, r4
              br r5, lo, exit
            lo:
              emit r1, r4
            exit:
              ret
            }
            "#,
        );
        let out = find_select(&p);
        let d = out.descriptor().unwrap();
        // rank > 100 OR (rank <= 100 AND rank < 2).
        assert_eq!(d.dnf.conjuncts.len(), 2);
        let s = webpage_schema();
        let mk =
            |rank: i64| -> Value { record(&s, vec!["u".into(), rank.into(), "c".into()]).into() };
        assert!(d.dnf.eval(&Value::Null, &mk(200)).unwrap());
        assert!(d.dnf.eval(&Value::Null, &mk(1)).unwrap());
        assert!(!d.dnf.eval(&Value::Null, &mk(50)).unwrap());
        // Index: two disjoint ranges on rank.
        let plan = d.plan.as_ref().unwrap();
        assert_eq!(plan.ranges.len(), 2);
    }

    /// The Hashtable pattern of Benchmark 4: unknown call rejected.
    #[test]
    fn hashtable_condition_rejected() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = call ht.new()
              r3 = call ht.contains(r2, r1)
              br r3, t, e
            t:
              r4 = const 1
              emit r1, r4
            e:
              ret
            }
            "#,
        );
        match find_select(&p) {
            SelectOutcome::Unknown(SelectMiss::NotFunctional(NonFunctional::UnknownCall(c))) => {
                assert!(
                    c.starts_with("ht."),
                    "witness should be the ht call, got {c}"
                )
            }
            other => panic!("expected unknown-call rejection, got {other:?}"),
        }
    }

    /// Emit inside a loop: loop-carried values are rejected.
    #[test]
    fn loop_emit_rejected() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.content
              r2 = call text.extract_urls(r1)
              r3 = call list.len(r2)
              r4 = const 0
              r5 = const 1
            head:
              r6 = cmp lt r4, r3
              br r6, body, exit
            body:
              r7 = call list.get(r2, r4)
              emit r7, r5
              r8 = add r4, r5
              r4 = r8
              jmp head
            exit:
              ret
            }
            "#,
        );
        match find_select(&p) {
            SelectOutcome::Unknown(SelectMiss::LoopCarried { .. }) => {}
            other => panic!("expected loop-carried rejection, got {other:?}"),
        }
    }

    /// Member-dependent emitted *value* (not condition) is also unsafe:
    /// skipping invocations would change the member and thus the output.
    #[test]
    fn member_dependent_emit_value_rejected() {
        let p = program(
            r#"
            func map(key, value) {
              member seen = 0
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = member seen
              r4 = add r3, r2
              member seen = r4
              r5 = cmp gt r1, r2
              br r5, t, e
            t:
              emit r1, r4
            e:
              ret
            }
            "#,
        );
        match find_select(&p) {
            SelectOutcome::Unknown(SelectMiss::NotFunctional(NonFunctional::MemberDependence(
                _,
            ))) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    /// DNF evaluation must agree with the interpreter: the formula is
    /// true iff the map emits.
    #[test]
    fn dnf_matches_interpreter_on_sweep() {
        let src = r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 10
              r3 = cmp ge r1, r2
              br r3, inner, exit
            inner:
              r4 = const 90
              r5 = cmp le r1, r4
              br r5, hit, exit
            hit:
              r6 = param key
              emit r6, r1
            exit:
              ret
            }
        "#;
        let p = program(src);
        let d = find_select(&p).descriptor().cloned().unwrap();
        let f = parse_function(src).unwrap();
        let s = webpage_schema();
        for rank in [-5i64, 0, 9, 10, 11, 50, 90, 91, 1000] {
            let v: Value = record(&s, vec!["u".into(), rank.into(), "c".into()]).into();
            let mut interp = mr_ir::interp::Interpreter::new(&f);
            let emitted = !interp
                .invoke_map(&f, &Value::str("k"), &v)
                .unwrap()
                .emits
                .is_empty();
            let predicted = d.dnf.eval(&Value::str("k"), &v).unwrap();
            assert_eq!(predicted, emitted, "mismatch at rank={rank}");
        }
        // And the plan ranges must cover every emitting rank.
        let plan = d.plan.unwrap();
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].to_string(), "[10, 90]");
    }

    #[test]
    fn pure_call_condition_accepted() {
        let p = program(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = const "https://*"
              r3 = call pattern.matches(r2, r1)
              br r3, t, e
            t:
              r4 = const 1
              emit r1, r4
            e:
              ret
            }
            "#,
        );
        let out = find_select(&p);
        let d = out.descriptor().expect("pattern.matches is whitelisted");
        assert!(d.dnf.to_string().contains("pattern.matches"));
        // No comparison against a constant → no index plan.
        assert!(d.plan.is_none());
    }

    #[test]
    fn path_cap_produces_too_many_paths() {
        // Build a ladder of diamonds ending in an emit.
        let mut src = String::from("func map(key, value) {\n  r0 = param value\n");
        let n = 12;
        for i in 0..n {
            src.push_str(&format!("  r{} = field r0.f{i}\n", i + 1));
            src.push_str(&format!(
                "  br r{}, a{i}, b{i}\na{i}:\n  jmp m{i}\nb{i}:\n  jmp m{i}\nm{i}:\n",
                i + 1
            ));
        }
        src.push_str("  r100 = const 1\n  emit r100, r100\n  ret\n}\n");
        let p = program(&src);
        match find_select_with_cap(&p, 64) {
            SelectOutcome::Unknown(SelectMiss::TooManyPaths) => {}
            other => panic!("expected TooManyPaths, got {other:?}"),
        }
    }
}
