//! Control-flow graphs (paper §3.1, Fig. 4).
//!
//! "A CFG for a method contains a node for each block of statements, and
//! directed edges that represent control transitions from one block to
//! another. A sequence of statements that employ no control-flow
//! primitives … can be merged into a single basic block."
//!
//! Blocks are discovered by classic leader analysis over the linear
//! MR-IR instruction stream, exactly as a JVM bytecode CFG builder
//! would.

use std::collections::BTreeSet;
use std::fmt;

use mr_ir::function::Function;
use mr_ir::instr::Instr;

/// Identifier of a basic block (index into [`Cfg::blocks`]).
pub type BlockId = usize;

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

impl BasicBlock {
    /// Index of the block's last instruction.
    pub fn last(&self) -> usize {
        self.end - 1
    }

    /// Instruction indices in this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A control-flow graph over basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks, ordered by start index. Block 0 is the function entry
    /// (instruction 0).
    pub blocks: Vec<BasicBlock>,
    /// Successor blocks of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor blocks of each block.
    pub preds: Vec<Vec<BlockId>>,
    block_of_instr: Vec<BlockId>,
}

impl Cfg {
    /// Build the CFG of a function.
    ///
    /// # Panics
    /// Panics on an empty function or out-of-range branch targets; run
    /// [`mr_ir::verify::verify`] first.
    pub fn build(func: &Function) -> Cfg {
        let n = func.instrs.len();
        assert!(n > 0, "cannot build CFG of empty function");

        // Leaders: entry, branch targets, and fall-through points after
        // terminators.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for (pc, instr) in func.instrs.iter().enumerate() {
            match instr {
                Instr::Jmp { target } => {
                    assert!(*target < n, "jump target out of range");
                    leaders.insert(*target);
                    if pc + 1 < n {
                        leaders.insert(pc + 1);
                    }
                }
                Instr::Br {
                    then_tgt, else_tgt, ..
                } => {
                    assert!(*then_tgt < n && *else_tgt < n, "branch target out of range");
                    leaders.insert(*then_tgt);
                    leaders.insert(*else_tgt);
                    if pc + 1 < n {
                        leaders.insert(pc + 1);
                    }
                }
                Instr::Ret if pc + 1 < n => {
                    leaders.insert(pc + 1);
                }
                _ => {}
            }
        }

        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks = Vec::with_capacity(starts.len());
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(n);
            blocks.push(BasicBlock { start, end });
        }

        let mut block_of_instr = vec![0usize; n];
        for (bid, b) in blocks.iter().enumerate() {
            for pc in b.range() {
                block_of_instr[pc] = bid;
            }
        }

        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        for (bid, b) in blocks.iter().enumerate() {
            let last = &func.instrs[b.last()];
            for succ_pc in last.successors(b.last()) {
                if succ_pc < n {
                    let sid = block_of_instr[succ_pc];
                    if !succs[bid].contains(&sid) {
                        succs[bid].push(sid);
                        preds[sid].push(bid);
                    }
                }
            }
        }

        Cfg {
            blocks,
            succs,
            preds,
            block_of_instr,
        }
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> BlockId {
        self.block_of_instr[pc]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the graph has no blocks (never happens for verified
    /// functions; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks that terminate the function (end in `Ret`).
    pub fn exit_blocks(&self, func: &Function) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(func.instrs[b.last()], Instr::Ret))
            .map(|(bid, _)| bid)
            .collect()
    }

    /// The set of blocks that participate in some CFG cycle (a
    /// non-trivial strongly-connected component, or a self-loop).
    /// Used by the analyzer's loop-soundness guard: per-path symbolic
    /// resolution is only valid for values never redefined inside a
    /// cycle.
    pub fn blocks_in_cycles(&self) -> Vec<bool> {
        // Tarjan's SCC, iterative.
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<BlockId> = Vec::new();
        let mut in_cycle = vec![false; n];
        let mut next_index = 0usize;

        // Explicit DFS stack: (node, child iterator position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(BlockId, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < self.succs[v].len() {
                    let w = self.succs[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    if lowlink[v] == index[v] {
                        // Root of an SCC: pop it.
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let cyclic = comp.len() > 1 || self.succs[comp[0]].contains(&comp[0]);
                        if cyclic {
                            for w in comp {
                                in_cycle[w] = true;
                            }
                        }
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
        in_cycle
    }

    /// True when any cycle block can reach `target` — i.e. execution may
    /// iterate a loop before arriving there.
    pub fn reachable_from_cycle(&self, target: BlockId) -> bool {
        let cyc = self.blocks_in_cycles();
        if cyc[target] {
            return true;
        }
        // Backward reachability from target.
        let mut seen = vec![false; self.len()];
        let mut work = vec![target];
        while let Some(b) = work.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for &p in &self.preds[b] {
                if cyc[p] {
                    return true;
                }
                work.push(p);
            }
        }
        false
    }

    /// Render the CFG in the style of the paper's Fig. 4, with synthetic
    /// `fn entry` / `fn exit` nodes.
    pub fn render(&self, func: &Function) -> String {
        let mut out = String::new();
        out.push_str(&format!("CFG for {}:\n", func.name));
        out.push_str("  [fn entry] -> B0\n");
        for (bid, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!("  B{bid} [{}..{}):\n", b.start, b.end));
            for pc in b.range() {
                out.push_str(&format!("    {pc:>3}: {}\n", func.instrs[pc]));
            }
            if self.succs[bid].is_empty() {
                out.push_str("    -> [fn exit]\n");
            } else {
                let targets: Vec<String> =
                    self.succs[bid].iter().map(|s| format!("B{s}")).collect();
                out.push_str(&format!("    -> {}\n", targets.join(", ")));
            }
        }
        out
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (bid, b) in self.blocks.iter().enumerate() {
            write!(f, "B{bid}[{}..{}) ->", b.start, b.end)?;
            for s in &self.succs[bid] {
                write!(f, " B{s}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;

    /// The paper's §2 example — Fig. 4 shows its CFG:
    /// entry → cond-block → {emit-block, end} → exit.
    fn select_fn() -> Function {
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              r4 = param key
              emit r4, r2
            exit:
              ret
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn fig4_shape() {
        let f = select_fn();
        let cfg = Cfg::build(&f);
        // B0 = test block, B1 = emit block, B2 = ret block.
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.succs[0], vec![1, 2]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert!(cfg.succs[2].is_empty());
        assert_eq!(cfg.preds[2], vec![0, 1]);
        assert_eq!(cfg.exit_blocks(&f), vec![2]);
    }

    #[test]
    fn straightline_is_single_block() {
        let f = parse_function(
            "func f(key, value) {\n  r0 = const 1\n  r1 = const 2\n  emit r0, r1\n  ret\n}\n",
        )
        .unwrap();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].range(), 0..4);
    }

    #[test]
    fn block_of_instr_mapping() {
        let f = select_fn();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(4), 0);
        assert_eq!(cfg.block_of(5), 1);
        assert_eq!(cfg.block_of(7), 2);
    }

    #[test]
    fn loop_detected_as_cycle() {
        let f = parse_function(
            r#"
            func f(key, value) {
              r0 = const 0
              r1 = const 10
            head:
              r2 = cmp lt r0, r1
              br r2, body, exit
            body:
              r3 = const 1
              r4 = add r0, r3
              r0 = r4
              jmp head
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&f);
        let cyc = cfg.blocks_in_cycles();
        let head = cfg.block_of(2);
        let body = cfg.block_of(4);
        let exit = cfg.block_of(8);
        assert!(cyc[head]);
        assert!(cyc[body]);
        assert!(!cyc[exit]);
        // The exit block is reachable from the loop.
        assert!(cfg.reachable_from_cycle(exit));
        // The entry block is not.
        assert!(!cfg.reachable_from_cycle(cfg.block_of(0)));
    }

    #[test]
    fn acyclic_function_has_no_cycles() {
        let cfg = Cfg::build(&select_fn());
        assert!(cfg.blocks_in_cycles().iter().all(|c| !c));
        assert!(!cfg.reachable_from_cycle(1));
    }

    #[test]
    fn self_loop_detected() {
        let f = parse_function("func f(key, value) {\nspin:\n  jmp spin\n}\n").unwrap();
        let cfg = Cfg::build(&f);
        assert!(cfg.blocks_in_cycles()[0]);
    }

    #[test]
    fn render_mentions_entry_and_exit() {
        let f = select_fn();
        let cfg = Cfg::build(&f);
        let text = cfg.render(&f);
        assert!(text.contains("[fn entry]"));
        assert!(text.contains("[fn exit]"));
        assert!(text.contains("emit"));
    }
}
