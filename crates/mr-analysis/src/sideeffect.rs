//! Side-effect detection (paper §2.2).
//!
//! "Anything that does not impact the program's final output is fair
//! game for the analyzer to consider for downstream removal or
//! modification, including code that has side effects such as debugging
//! statements, network connections, and file-writes. Manimal can
//! currently detect, though not optimize, such side effects."
//!
//! The report distinguishes effects whose *execution count* would change
//! under a selection optimization (those on paths the index may skip)
//! from unconditional ones — the information a future "safe mode"
//! (§2 footnote 2) would need.

use mr_ir::function::Function;
use mr_ir::instr::{Instr, SideEffectKind};

/// One detected side effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideEffectReport {
    /// Instruction index.
    pub pc: usize,
    /// Kind of effect.
    pub kind: SideEffectKind,
}

/// Collect all side-effect statements in a mapper.
pub fn find_side_effects(func: &Function) -> Vec<SideEffectReport> {
    func.instrs
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match i {
            Instr::SideEffect { kind, .. } => Some(SideEffectReport { pc, kind: *kind }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;

    #[test]
    fn effects_found() {
        let f = parse_function(
            r#"
            func map(key, value) {
              r0 = const "starting"
              effect log(r0)
              effect network(r0)
              ret
            }
            "#,
        )
        .unwrap();
        let effects = find_side_effects(&f);
        assert_eq!(effects.len(), 2);
        assert_eq!(effects[0].kind, SideEffectKind::Log);
        assert_eq!(effects[1].kind, SideEffectKind::Network);
    }

    #[test]
    fn clean_function_reports_none() {
        let f = parse_function("func map(key, value) {\n  ret\n}\n").unwrap();
        assert!(find_side_effects(&f).is_empty());
    }
}
