//! Records: schema-typed tuples flowing through map and reduce.

use std::fmt;
use std::sync::Arc;

use crate::schema::Schema;
use crate::value::Value;

/// A record is an ordered tuple of values conforming to a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

/// Errors raised when building or accessing records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Value count does not match the schema's field count.
    ArityMismatch {
        /// Fields declared by the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// No field with this name exists in the schema.
    NoSuchField(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record arity mismatch: schema has {expected} fields, got {got} values"
                )
            }
            RecordError::NoSuchField(name) => write!(f, "no such field: {name}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl Record {
    /// Build a record, checking arity against the schema.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>) -> Result<Self, RecordError> {
        if values.len() != schema.len() {
            return Err(RecordError::ArityMismatch {
                expected: schema.len(),
                got: values.len(),
            });
        }
        Ok(Record { schema, values })
    }

    /// The record's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All field values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of the named field.
    pub fn get(&self, field: &str) -> Result<&Value, RecordError> {
        self.schema
            .index_of(field)
            .map(|i| &self.values[i])
            .ok_or_else(|| RecordError::NoSuchField(field.to_string()))
    }

    /// Value by positional index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Project this record onto the fields of `target` (which must be a
    /// sub-schema produced by [`Schema::project`]). Fields absent from
    /// this record's schema get their type's default value.
    pub fn project_to(&self, target: Arc<Schema>) -> Record {
        let values = target
            .fields()
            .iter()
            .map(|fd| {
                self.schema
                    .index_of(&fd.name)
                    .map(|i| self.values[i].clone())
                    .unwrap_or_else(|| fd.ty.default_value())
            })
            .collect();
        Record {
            schema: target,
            values,
        }
    }

    /// Approximate in-memory payload size; used by engine counters.
    pub fn payload_size(&self) -> usize {
        self.values.iter().map(Value::payload_size).sum()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.schema.name())?;
        for (i, (fd, v)) in self.schema.fields().iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fd.name, v)?;
        }
        write!(f, "}}")
    }
}

/// Convenience constructor used pervasively in tests and generators.
pub fn record(schema: &Arc<Schema>, values: Vec<Value>) -> Record {
    Record::new(Arc::clone(schema), values).expect("record arity matches schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;

    fn webpage() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    #[test]
    fn build_and_access() {
        let s = webpage();
        let r = record(&s, vec!["http://a".into(), 7.into(), "body".into()]);
        assert_eq!(r.get("rank").unwrap(), &Value::Int(7));
        assert!(matches!(r.get("nope"), Err(RecordError::NoSuchField(_))));
    }

    #[test]
    fn arity_checked() {
        let s = webpage();
        let err = Record::new(s, vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            RecordError::ArityMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn projection_drops_and_defaults() {
        let s = webpage();
        let r = record(&s, vec!["http://a".into(), 7.into(), "body".into()]);
        let proj = Arc::new(s.project(&["rank".into()]));
        let p = r.project_to(Arc::clone(&proj));
        assert_eq!(p.values(), &[Value::Int(7)]);
        // Projecting to a wider schema back-fills defaults.
        let q = p.project_to(s.clone());
        assert_eq!(q.get("url").unwrap(), &Value::str(""));
        assert_eq!(q.get("rank").unwrap(), &Value::Int(7));
    }

    #[test]
    fn display_shows_fields() {
        let s = webpage();
        let r = record(&s, vec!["u".into(), 1.into(), "c".into()]);
        assert_eq!(
            r.to_string(),
            "WebPage{url: \"u\", rank: 1, content: \"c\"}"
        );
    }
}
