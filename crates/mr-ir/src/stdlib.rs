//! The library-call registry.
//!
//! Every [`Instr::Call`](crate::instr::Instr::Call) resolves through this
//! registry, which carries two things per function:
//!
//! 1. an evaluator, used by the interpreter, and
//! 2. a **purity level**, used by the analyzer's `isFunc` test. The
//!    paper's analyzer "has built-in knowledge of standard language
//!    operations and some common class library methods, such as those
//!    associated with `String`, `Pattern`, etc." — and, crucially, it
//!    *lacks* knowledge of `java.util.Hashtable`, which is exactly why
//!    the Benchmark-4 selection goes undetected (Table 1). The `ht.*`
//!    family here is therefore registered with [`Purity::Unknown`] even
//!    though its implementation happens to be functional.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::OnceLock;

use crate::error::IrError;
use crate::value::Value;

/// What the analyzer may assume about a callable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// Known functional: the result depends only on the arguments, and
    /// there are no side effects. Safe inside an emit-relevant use-def
    /// DAG.
    Pure,
    /// The analyzer has no built-in knowledge of this method. It might
    /// be functional, but `isFunc` must conservatively reject it.
    Unknown,
    /// Known impure (clocks, random sources). Always rejected.
    Impure,
}

type EvalFn = fn(&str, &[Value]) -> Result<Value, IrError>;

/// Registry entry for one callable.
#[derive(Clone)]
pub struct FuncDef {
    /// Registry name, e.g. `"str.contains"`.
    pub name: &'static str,
    /// Number of arguments.
    pub arity: usize,
    /// Analyzer-visible purity.
    pub purity: Purity,
    /// Interpreter evaluator.
    pub eval: EvalFn,
    /// One-line description for documentation/printing.
    pub doc: &'static str,
}

impl std::fmt::Debug for FuncDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuncDef")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("purity", &self.purity)
            .finish()
    }
}

/// The stdlib: a lookup table of callables.
pub struct Stdlib {
    funcs: HashMap<&'static str, FuncDef>,
}

impl Stdlib {
    /// Look up a function by registry name.
    pub fn get(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.get(name)
    }

    /// Whether a call to `name` is known pure. Unknown names are not
    /// pure — the analyzer must reject what it cannot resolve.
    pub fn is_pure(&self, name: &str) -> bool {
        self.get(name).is_some_and(|f| f.purity == Purity::Pure)
    }

    /// Evaluate a call; checks existence and arity.
    pub fn eval(&self, name: &str, args: &[Value]) -> Result<Value, IrError> {
        let def = self
            .get(name)
            .ok_or_else(|| IrError::UnknownFunction(name.to_string()))?;
        if args.len() != def.arity {
            return Err(IrError::Arity {
                func: name.to_string(),
                expected: def.arity,
                got: args.len(),
            });
        }
        (def.eval)(name, args)
    }

    /// All registered names, sorted (for documentation output).
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self.funcs.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// The process-wide registry.
pub fn stdlib() -> &'static Stdlib {
    static REGISTRY: OnceLock<Stdlib> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

// ---- evaluator helpers -------------------------------------------------

fn type_err(ctx: &str, expected: &'static str, got: &Value) -> IrError {
    IrError::Type {
        context: ctx.to_string(),
        expected,
        got: got.kind_name(),
    }
}

fn want_str<'a>(ctx: &str, v: &'a Value) -> Result<&'a str, IrError> {
    v.as_str().ok_or_else(|| type_err(ctx, "str", v))
}

fn want_int(ctx: &str, v: &Value) -> Result<i64, IrError> {
    v.as_int().ok_or_else(|| type_err(ctx, "int", v))
}

fn want_num(ctx: &str, v: &Value) -> Result<f64, IrError> {
    v.as_double().ok_or_else(|| type_err(ctx, "number", v))
}

fn want_list<'a>(ctx: &str, v: &'a Value) -> Result<&'a [Value], IrError> {
    match v {
        Value::List(l) => Ok(l),
        _ => Err(type_err(ctx, "list", v)),
    }
}

fn want_map<'a>(ctx: &str, v: &'a Value) -> Result<&'a BTreeMap<Value, Value>, IrError> {
    match v {
        Value::Map(m) => Ok(m),
        _ => Err(type_err(ctx, "map", v)),
    }
}

fn want_record<'a>(ctx: &str, v: &'a Value) -> Result<&'a crate::record::Record, IrError> {
    v.as_record().ok_or_else(|| type_err(ctx, "record", v))
}

/// Glob matching with `*` (any run) and `?` (any single char).
/// This stands in for `java.util.regex.Pattern` — a pure string
/// predicate the analyzer whitelists; full regular expressions are not
/// needed by any workload in the paper.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Classic two-pointer with backtracking to the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Extract `http(s)://…` URLs from free text, the UDF-aggregation
/// primitive of Pavlo Benchmark 4 (finding in-links in page content).
pub fn extract_urls(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(pos) = text[i..].find("http") {
        let start = i + pos;
        let rest = &text[start..];
        let scheme_len = if rest.starts_with("https://") {
            8
        } else if rest.starts_with("http://") {
            7
        } else {
            i = start + 4;
            continue;
        };
        let mut end = start + scheme_len;
        while end < bytes.len() {
            let c = bytes[end] as char;
            if c.is_ascii_alphanumeric() || "-._~:/?#[]@!$&'()*+,;=%".contains(c) {
                end += 1;
            } else {
                break;
            }
        }
        if end > start + scheme_len {
            out.push(text[start..end].to_string());
        }
        i = end.max(start + 4);
    }
    out
}

// ---- the registry ------------------------------------------------------

macro_rules! def {
    ($map:expr, $name:literal, $arity:expr, $purity:expr, $doc:literal, $eval:expr) => {
        $map.insert(
            $name,
            FuncDef {
                name: $name,
                arity: $arity,
                purity: $purity,
                eval: $eval,
                doc: $doc,
            },
        );
    };
}

#[allow(clippy::too_many_lines)]
fn build_registry() -> Stdlib {
    use Purity::*;
    let mut m: HashMap<&'static str, FuncDef> = HashMap::new();

    // --- String methods (whitelisted, paper §3.2) ---
    def!(m, "str.len", 1, Pure, "string length in bytes", |c, a| {
        Ok(Value::Int(want_str(c, &a[0])?.len() as i64))
    });
    def!(
        m,
        "str.contains",
        2,
        Pure,
        "substring containment",
        |c, a| {
            Ok(Value::Bool(
                want_str(c, &a[0])?.contains(want_str(c, &a[1])?),
            ))
        }
    );
    def!(m, "str.starts_with", 2, Pure, "prefix test", |c, a| {
        Ok(Value::Bool(
            want_str(c, &a[0])?.starts_with(want_str(c, &a[1])?),
        ))
    });
    def!(m, "str.ends_with", 2, Pure, "suffix test", |c, a| {
        Ok(Value::Bool(
            want_str(c, &a[0])?.ends_with(want_str(c, &a[1])?),
        ))
    });
    def!(
        m,
        "str.substring",
        3,
        Pure,
        "substring [start, end)",
        |c, a| {
            let s = want_str(c, &a[0])?;
            let start = (want_int(c, &a[1])?.max(0) as usize).min(s.len());
            let end = (want_int(c, &a[2])?.max(0) as usize).clamp(start, s.len());
            // Clamp to char boundaries so malformed offsets degrade, not panic.
            let start = (start..=s.len())
                .find(|&i| s.is_char_boundary(i))
                .unwrap_or(s.len());
            let end = (end..=s.len())
                .find(|&i| s.is_char_boundary(i))
                .unwrap_or(s.len());
            Ok(Value::str(&s[start.min(end)..end]))
        }
    );
    def!(
        m,
        "str.index_of",
        2,
        Pure,
        "index of substring or -1",
        |c, a| {
            let s = want_str(c, &a[0])?;
            Ok(Value::Int(
                s.find(want_str(c, &a[1])?).map_or(-1, |i| i as i64),
            ))
        }
    );
    def!(m, "str.concat", 2, Pure, "concatenation", |c, a| {
        let mut s = want_str(c, &a[0])?.to_string();
        s.push_str(want_str(c, &a[1])?);
        Ok(Value::Str(Arc::from(s.as_str())))
    });
    def!(m, "str.to_lower", 1, Pure, "ASCII lowercase", |c, a| {
        Ok(Value::from(want_str(c, &a[0])?.to_ascii_lowercase()))
    });
    def!(m, "str.to_upper", 1, Pure, "ASCII uppercase", |c, a| {
        Ok(Value::from(want_str(c, &a[0])?.to_ascii_uppercase()))
    });
    def!(
        m,
        "str.trim",
        1,
        Pure,
        "strip surrounding whitespace",
        |c, a| { Ok(Value::str(want_str(c, &a[0])?.trim())) }
    );
    def!(
        m,
        "str.split_get",
        3,
        Pure,
        "nth piece after splitting",
        |c, a| {
            let s = want_str(c, &a[0])?;
            let sep = want_str(c, &a[1])?;
            let n = want_int(c, &a[2])?;
            let piece = if n < 0 {
                None
            } else {
                s.split(sep).nth(n as usize)
            };
            Ok(piece.map_or(Value::Null, Value::str))
        }
    );
    def!(
        m,
        "str.eq_ignore_case",
        2,
        Pure,
        "case-insensitive equality",
        |c, a| {
            Ok(Value::Bool(
                want_str(c, &a[0])?.eq_ignore_ascii_case(want_str(c, &a[1])?),
            ))
        }
    );

    // --- Pattern (whitelisted) ---
    def!(
        m,
        "pattern.matches",
        2,
        Pure,
        "glob match: pattern, text",
        |c, a| {
            Ok(Value::Bool(glob_match(
                want_str(c, &a[0])?,
                want_str(c, &a[1])?,
            )))
        }
    );

    // --- Parsing (whitelisted) ---
    def!(
        m,
        "parse.int",
        1,
        Pure,
        "parse int, null on failure",
        |c, a| {
            Ok(want_str(c, &a[0])?
                .trim()
                .parse::<i64>()
                .map_or(Value::Null, Value::Int))
        }
    );
    def!(
        m,
        "parse.double",
        1,
        Pure,
        "parse double, null on failure",
        |c, a| {
            Ok(want_str(c, &a[0])?
                .trim()
                .parse::<f64>()
                .map_or(Value::Null, Value::Double))
        }
    );

    // --- Math (whitelisted) ---
    def!(m, "math.abs", 1, Pure, "absolute value", |c, a| {
        match &a[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Double(d) => Ok(Value::Double(d.abs())),
            v => Err(type_err(c, "number", v)),
        }
    });
    def!(m, "math.min", 2, Pure, "minimum", |c, a| {
        let (x, y) = (want_num(c, &a[0])?, want_num(c, &a[1])?);
        Ok(if x <= y { a[0].clone() } else { a[1].clone() })
    });
    def!(m, "math.max", 2, Pure, "maximum", |c, a| {
        let (x, y) = (want_num(c, &a[0])?, want_num(c, &a[1])?);
        Ok(if x >= y { a[0].clone() } else { a[1].clone() })
    });
    def!(
        m,
        "math.floor_div",
        2,
        Pure,
        "integer floor division",
        |c, a| {
            let d = want_int(c, &a[1])?;
            if d == 0 {
                return Err(IrError::DivByZero);
            }
            Ok(Value::Int(want_int(c, &a[0])?.div_euclid(d)))
        }
    );

    // --- Text utilities (whitelisted) ---
    def!(
        m,
        "text.extract_urls",
        1,
        Pure,
        "extract http(s) URLs from text",
        |c, a| {
            Ok(Value::list(
                extract_urls(want_str(c, &a[0])?)
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            ))
        }
    );

    // --- Lists (whitelisted) ---
    def!(m, "list.len", 1, Pure, "list length", |c, a| {
        Ok(Value::Int(want_list(c, &a[0])?.len() as i64))
    });
    def!(
        m,
        "list.get",
        2,
        Pure,
        "element by index, null if out of range",
        |c, a| {
            let l = want_list(c, &a[0])?;
            let i = want_int(c, &a[1])?;
            Ok(if i < 0 {
                Value::Null
            } else {
                l.get(i as usize).cloned().unwrap_or(Value::Null)
            })
        }
    );

    // --- Opaque-tuple accessors (the AbstractTuple of Pavlo B1). ---
    // Whitelisted as pure record accessors, but they convey *no*
    // information about serialized field boundaries, so projection and
    // delta-compression cannot use them (Table 1, Benchmark 1).
    def!(
        m,
        "tuple.get_int",
        2,
        Pure,
        "opaque-tuple int accessor",
        |c, a| {
            let r = want_record(c, &a[0])?;
            let name = want_str(c, &a[1])?;
            r.get(name)
                .cloned()
                .map_err(|_| IrError::NoSuchField(name.to_string()))
        }
    );
    def!(
        m,
        "tuple.get_str",
        2,
        Pure,
        "opaque-tuple string accessor",
        |c, a| {
            let r = want_record(c, &a[0])?;
            let name = want_str(c, &a[1])?;
            r.get(name)
                .cloned()
                .map_err(|_| IrError::NoSuchField(name.to_string()))
        }
    );

    // --- Hashtable (NOT whitelisted — the Benchmark-4 blind spot). ---
    // The implementation is functional (persistent maps), but the
    // analyzer has no built-in knowledge of it, exactly as the paper's
    // analyzer had none of java.util.Hashtable.
    def!(m, "ht.new", 0, Unknown, "new empty hashtable", |_c, _a| {
        Ok(Value::empty_map())
    });
    def!(
        m,
        "ht.put",
        3,
        Unknown,
        "hashtable with (k, v) inserted",
        |c, a| {
            let base = want_map(c, &a[0])?;
            let mut next = base.clone();
            next.insert(a[1].clone(), a[2].clone());
            Ok(Value::Map(Arc::new(next)))
        }
    );
    def!(
        m,
        "ht.contains",
        2,
        Unknown,
        "key containment test",
        |c, a| { Ok(Value::Bool(want_map(c, &a[0])?.contains_key(&a[1]))) }
    );
    def!(
        m,
        "ht.get",
        2,
        Unknown,
        "lookup, null when absent",
        |c, a| {
            Ok(want_map(c, &a[0])?
                .get(&a[1])
                .cloned()
                .unwrap_or(Value::Null))
        }
    );

    // --- Known-impure sources (clock, randomness). ---
    def!(
        m,
        "time.now_millis",
        0,
        Impure,
        "wall-clock time",
        |_c, _a| {
            let ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as i64)
                .unwrap_or(0);
            Ok(Value::Int(ms))
        }
    );
    def!(
        m,
        "rng.next_int",
        1,
        Impure,
        "pseudo-random int in [0, n)",
        |c, a| {
            // A deliberately weak LCG seeded from the clock; the point is
            // that the analyzer must refuse to reason about it.
            let n = want_int(c, &a[0])?.max(1);
            let seed = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as i64)
                .unwrap_or(12345);
            Ok(Value::Int(
                (seed.wrapping_mul(6364136223846793005) >> 16).rem_euclid(n),
            ))
        }
    );

    Stdlib { funcs: m }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_classification() {
        let lib = stdlib();
        assert!(lib.is_pure("str.contains"));
        assert!(lib.is_pure("pattern.matches"));
        assert!(lib.is_pure("tuple.get_int"));
        assert!(!lib.is_pure("ht.contains"), "Hashtable must be unknown");
        assert!(!lib.is_pure("time.now_millis"));
        assert!(!lib.is_pure("no.such.fn"));
    }

    #[test]
    fn string_functions() {
        let lib = stdlib();
        let r = lib
            .eval("str.contains", &[Value::str("hello"), Value::str("ell")])
            .unwrap();
        assert_eq!(r, Value::Bool(true));
        let r = lib
            .eval(
                "str.substring",
                &[Value::str("hello"), Value::Int(1), Value::Int(3)],
            )
            .unwrap();
        assert_eq!(r, Value::str("el"));
        let r = lib
            .eval(
                "str.split_get",
                &[Value::str("a,b,c"), Value::str(","), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r, Value::str("b"));
    }

    #[test]
    fn arity_and_unknown_errors() {
        let lib = stdlib();
        assert!(matches!(
            lib.eval("str.len", &[]),
            Err(IrError::Arity { .. })
        ));
        assert!(matches!(
            lib.eval("nope", &[]),
            Err(IrError::UnknownFunction(_))
        ));
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*.log", "server.log"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(glob_match("*", ""));
        assert!(glob_match("ab*cd*ef", "abXXcdYYef"));
        assert!(!glob_match("ab*cd", "abce"));
        assert!(glob_match("**", "anything"));
    }

    #[test]
    fn url_extraction() {
        let urls = extract_urls("see http://a.com/x and https://b.org, done");
        assert_eq!(urls, vec!["http://a.com/x", "https://b.org,"]);
        assert!(extract_urls("no urls here").is_empty());
        assert!(extract_urls("http:// nothing").is_empty());
    }

    #[test]
    fn hashtable_is_functional_but_unknown() {
        let lib = stdlib();
        let empty = lib.eval("ht.new", &[]).unwrap();
        let with = lib
            .eval("ht.put", &[empty.clone(), Value::Int(1), Value::str("x")])
            .unwrap();
        assert_eq!(
            lib.eval("ht.contains", &[with.clone(), Value::Int(1)])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            lib.eval("ht.contains", &[empty, Value::Int(1)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            lib.eval("ht.get", &[with, Value::Int(2)]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn parse_failures_yield_null() {
        let lib = stdlib();
        assert_eq!(
            lib.eval("parse.int", &[Value::str("zz")]).unwrap(),
            Value::Null
        );
        assert_eq!(
            lib.eval("parse.int", &[Value::str(" 42 ")]).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn substring_handles_multibyte_without_panicking() {
        let lib = stdlib();
        // Offsets landing inside a multi-byte char degrade gracefully.
        let r = lib
            .eval(
                "str.substring",
                &[Value::str("aé b"), Value::Int(0), Value::Int(2)],
            )
            .unwrap();
        assert!(matches!(r, Value::Str(_)));
    }

    #[test]
    fn names_sorted_and_documented() {
        let lib = stdlib();
        let names = lib.names();
        assert!(names.windows(2).all(|w| w[0] < w[1]));
        for n in names {
            assert!(!lib.get(n).unwrap().doc.is_empty());
        }
    }
}
