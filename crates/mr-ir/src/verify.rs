//! Static well-formedness checks for MR-IR functions.
//!
//! The verifier rejects malformed programs *before* analysis or
//! execution, the way the JVM's bytecode verifier guarantees ASM-level
//! tools a minimum of sanity: in-range jumps, definite assignment of
//! registers on every path, resolvable calls with correct arity, and
//! declared member variables.

use std::collections::VecDeque;

use crate::function::Function;
use crate::instr::Instr;
use crate::stdlib::stdlib;

/// A verification failure, with the offending instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Index of the offending instruction.
    pub pc: usize,
    /// What is wrong.
    pub kind: VerifyErrorKind,
}

/// The kinds of verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// Branch or jump target outside the instruction stream.
    JumpOutOfRange(usize),
    /// The last reachable instruction can fall off the end.
    FallsOffEnd,
    /// A register may be read before any assignment.
    MaybeUnassigned(crate::instr::Reg),
    /// Call to an unregistered function.
    UnknownFunction(String),
    /// Call with the wrong number of arguments.
    BadArity {
        /// Function name.
        func: String,
        /// Declared arity.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// `GetMember`/`SetMember` on a member the function never declared.
    UndeclaredMember(String),
    /// The function body is empty.
    EmptyBody,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at {}: ", self.pc)?;
        match &self.kind {
            VerifyErrorKind::JumpOutOfRange(t) => write!(f, "jump target {t} out of range"),
            VerifyErrorKind::FallsOffEnd => write!(f, "execution can fall off the end"),
            VerifyErrorKind::MaybeUnassigned(r) => {
                write!(f, "register {r} may be read before assignment")
            }
            VerifyErrorKind::UnknownFunction(n) => write!(f, "unknown function {n}"),
            VerifyErrorKind::BadArity {
                func,
                expected,
                got,
            } => write!(f, "{func} takes {expected} args, got {got}"),
            VerifyErrorKind::UndeclaredMember(n) => write!(f, "undeclared member {n}"),
            VerifyErrorKind::EmptyBody => write!(f, "empty function body"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a function, returning all problems found.
pub fn verify(func: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let n = func.instrs.len();
    if n == 0 {
        return Err(vec![VerifyError {
            pc: 0,
            kind: VerifyErrorKind::EmptyBody,
        }]);
    }

    let reachable = reachable_set(func);
    let lib = stdlib();
    for (pc, instr) in func.instrs.iter().enumerate() {
        // Jump ranges.
        match instr {
            Instr::Jmp { target } if *target >= n => {
                errors.push(VerifyError {
                    pc,
                    kind: VerifyErrorKind::JumpOutOfRange(*target),
                });
            }
            Instr::Br {
                then_tgt, else_tgt, ..
            } => {
                for t in [then_tgt, else_tgt] {
                    if *t >= n {
                        errors.push(VerifyError {
                            pc,
                            kind: VerifyErrorKind::JumpOutOfRange(*t),
                        });
                    }
                }
            }
            _ => {}
        }
        // Fall-through off the end (only for reachable code).
        if pc == n - 1 && !instr.is_terminator() && reachable[pc] {
            errors.push(VerifyError {
                pc,
                kind: VerifyErrorKind::FallsOffEnd,
            });
        }
        // Calls resolvable with the right arity.
        if let Instr::Call {
            func: name, args, ..
        } = instr
        {
            match lib.get(name) {
                None => errors.push(VerifyError {
                    pc,
                    kind: VerifyErrorKind::UnknownFunction(name.clone()),
                }),
                Some(def) if def.arity != args.len() => errors.push(VerifyError {
                    pc,
                    kind: VerifyErrorKind::BadArity {
                        func: name.clone(),
                        expected: def.arity,
                        got: args.len(),
                    },
                }),
                _ => {}
            }
        }
        // Members declared.
        match instr {
            Instr::GetMember { name, .. } | Instr::SetMember { name, .. }
                if func.member_initial(name).is_none() =>
            {
                errors.push(VerifyError {
                    pc,
                    kind: VerifyErrorKind::UndeclaredMember(name.clone()),
                });
            }
            _ => {}
        }
    }

    // Abort early if jumps are broken — the dataflow below needs a
    // well-formed CFG.
    if !errors.is_empty() {
        return Err(errors);
    }

    errors.extend(check_definite_assignment(func));
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Instructions reachable from entry, ignoring out-of-range targets.
fn reachable_set(func: &Function) -> Vec<bool> {
    let n = func.instrs.len();
    let mut seen = vec![false; n];
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc >= n || seen[pc] {
            continue;
        }
        seen[pc] = true;
        work.extend(func.instrs[pc].successors(pc));
    }
    seen
}

/// Forward may-be-unassigned dataflow: a register read is an error if
/// *some* path reaches it without a prior def. `assigned[pc]` holds the
/// set of registers definitely assigned on entry to `pc` (intersection
/// over predecessors).
fn check_definite_assignment(func: &Function) -> Vec<VerifyError> {
    let n = func.instrs.len();
    let regs = func.num_regs();
    if regs == 0 {
        return Vec::new();
    }
    // Bitset per pc; None = not yet visited.
    let mut assigned_in: Vec<Option<Vec<bool>>> = vec![None; n];
    assigned_in[0] = Some(vec![false; regs]);
    let mut work: VecDeque<usize> = VecDeque::from([0]);

    while let Some(pc) = work.pop_front() {
        let mut state = assigned_in[pc].clone().expect("queued pc has state");
        let instr = &func.instrs[pc];
        if let Some(d) = instr.def() {
            state[d.0 as usize] = true;
        }
        for succ in instr.successors(pc) {
            if succ >= n {
                continue; // jump-range errors already reported
            }
            let changed = match &mut assigned_in[succ] {
                None => {
                    assigned_in[succ] = Some(state.clone());
                    true
                }
                Some(existing) => {
                    let mut changed = false;
                    for (e, s) in existing.iter_mut().zip(&state) {
                        // Intersection: definitely assigned only if
                        // assigned along *every* incoming path.
                        if *e && !*s {
                            *e = false;
                            changed = true;
                        }
                    }
                    changed
                }
            };
            if changed {
                work.push_back(succ);
            }
        }
    }

    let mut errors = Vec::new();
    for (pc, instr) in func.instrs.iter().enumerate() {
        let Some(state) = &assigned_in[pc] else {
            continue; // unreachable code: nothing to report
        };
        for r in instr.uses() {
            if !state[r.0 as usize] {
                errors.push(VerifyError {
                    pc,
                    kind: VerifyErrorKind::MaybeUnassigned(r),
                });
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{CmpOp, ParamId, Reg};
    use crate::value::Value;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("map");
        let v = b.load_param(ParamId::Value);
        let r = b.get_field(v, "rank");
        let one = b.const_int(1);
        let c = b.cmp(CmpOp::Gt, r, one);
        let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
        b.br(c, t, e);
        b.bind(t);
        b.emit(r, one);
        b.bind(e);
        b.ret();
        assert!(verify(&b.finish()).is_ok());
    }

    #[test]
    fn empty_body_rejected() {
        let f = Function {
            name: "f".into(),
            instrs: vec![],
            members: vec![],
        };
        let errs = verify(&f).unwrap_err();
        assert_eq!(errs[0].kind, VerifyErrorKind::EmptyBody);
    }

    #[test]
    fn fall_off_end_rejected() {
        let f = Function {
            name: "f".into(),
            instrs: vec![Instr::Const {
                dst: Reg(0),
                val: Value::Int(1),
            }],
            members: vec![],
        };
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::FallsOffEnd));
    }

    #[test]
    fn out_of_range_jump_rejected() {
        let f = Function {
            name: "f".into(),
            instrs: vec![Instr::Jmp { target: 99 }],
            members: vec![],
        };
        let errs = verify(&f).unwrap_err();
        assert_eq!(errs[0].kind, VerifyErrorKind::JumpOutOfRange(99));
    }

    #[test]
    fn maybe_unassigned_on_one_path_rejected() {
        // r1 assigned only on the then-path, then read after the join.
        let f = Function {
            name: "f".into(),
            instrs: vec![
                Instr::Const {
                    dst: Reg(0),
                    val: Value::Bool(true),
                },
                Instr::Br {
                    cond: Reg(0),
                    then_tgt: 2,
                    else_tgt: 3,
                },
                Instr::Const {
                    dst: Reg(1),
                    val: Value::Int(1),
                },
                Instr::Emit {
                    key: Reg(0),
                    value: Reg(1),
                },
                Instr::Ret,
            ],
            members: vec![],
        };
        let errs = verify(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == VerifyErrorKind::MaybeUnassigned(Reg(1))));
    }

    #[test]
    fn unknown_function_and_arity_rejected() {
        let mut b = FunctionBuilder::new("f");
        let x = b.const_str("s");
        let _ = b.call("no.such", vec![x]);
        let _ = b.call("str.len", vec![x, x]);
        b.ret();
        let errs = verify(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, VerifyErrorKind::UnknownFunction(_))));
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, VerifyErrorKind::BadArity { .. })));
    }

    #[test]
    fn undeclared_member_rejected() {
        let mut b = FunctionBuilder::new("f");
        let x = b.get_member("counter");
        b.emit(x, x);
        b.ret();
        let errs = verify(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, VerifyErrorKind::UndeclaredMember(_))));
    }

    #[test]
    fn declared_member_accepted() {
        let mut b = FunctionBuilder::new("f");
        b.declare_member("counter", Value::Int(0));
        let x = b.get_member("counter");
        b.set_member("counter", x);
        b.ret();
        assert!(verify(&b.finish()).is_ok());
    }

    #[test]
    fn unreachable_code_not_flagged() {
        let f = Function {
            name: "f".into(),
            instrs: vec![
                Instr::Ret,
                // Unreachable: reads an unassigned register, but no path
                // reaches it, so the verifier stays quiet.
                Instr::Emit {
                    key: Reg(0),
                    value: Reg(0),
                },
            ],
            members: vec![],
        };
        assert!(verify(&f).is_ok());
    }
}
