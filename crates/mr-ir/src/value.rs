//! Runtime values manipulated by MR-IR programs.
//!
//! The value model mirrors what a MapReduce `map()` written in Java sees:
//! boxed primitives, strings, byte arrays, and (for library calls such as
//! URL-extraction or `Hashtable`) lists, maps and nested records.
//!
//! `Value` is deliberately cheap to clone: strings, byte arrays, lists,
//! maps and records are behind `Arc`s, so the execution fabric can move
//! values between map, shuffle and reduce stages without deep copies.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::record::Record;

/// A dynamically-typed runtime value.
///
/// Ordering is total (needed for shuffle sorting and for `Value` keys in
/// [`Value::Map`]): values of different kinds order by a fixed kind rank,
/// and doubles use IEEE `total_cmp`.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// The absence of a value (Java `null`).
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer. Schema-level `Int` and `Long` fields both
    /// decode to this variant; the distinction only affects serialization.
    Int(i64),
    /// A 64-bit IEEE float.
    Double(f64),
    /// An immutable UTF-8 string.
    Str(Arc<str>),
    /// An immutable byte array.
    Bytes(Arc<[u8]>),
    /// An immutable list (e.g. the URLs extracted from a document).
    List(Arc<Vec<Value>>),
    /// An immutable ordered map (models `java.util.Hashtable` for the
    /// Pavlo UDF-aggregation benchmark; persistent so that the
    /// interpreter stays purely value-oriented).
    Map(Arc<BTreeMap<Value, Value>>),
    /// A nested record (e.g. a tagged tuple emitted by a join mapper).
    Record(Arc<Record>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a byte-array value.
    pub fn bytes(b: impl AsRef<[u8]>) -> Self {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Self {
        Value::List(Arc::new(items))
    }

    /// Build an empty map value.
    pub fn empty_map() -> Self {
        Value::Map(Arc::new(BTreeMap::new()))
    }

    /// A stable rank for cross-kind comparisons.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::List(_) => 6,
            Value::Map(_) => 7,
            Value::Record(_) => 8,
        }
    }

    /// Human-readable kind name, used in type-error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Record(_) => "record",
        }
    }

    /// True when the value is "truthy" in a conditional branch: non-zero
    /// numbers, `true`, non-empty strings/collections. Mirrors the loose
    /// conditional semantics of the source programs we model.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
            Value::Record(_) => true,
        }
    }

    /// Interpret as integer, if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret as double, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a record, if this is a record.
    pub fn as_record(&self) -> Option<&Record> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Approximate in-memory payload size in bytes; used by engine
    /// counters to report shuffled data volume.
    pub fn payload_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(l) => l.iter().map(Value::payload_size).sum(),
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| k.payload_size() + v.payload_size())
                .sum(),
            Value::Record(r) => r.payload_size(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Numeric cross-kind comparisons are value-based so that a
            // predicate `v.rank > 1.5` behaves sensibly on int fields.
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.iter().cmp(b.iter()),
            (Record(a), Record(b)) => a.values().cmp(b.values()),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Int(2) and Double(2.0) compare equal, so integral doubles must
        // hash exactly like the corresponding Int to keep Hash
        // consistent with Eq (shuffle partitioning depends on it).
        if let Value::Double(d) = self {
            let as_int = *d as i64;
            if as_int as f64 == *d {
                Value::Int(as_int).hash(state);
                return;
            }
        }
        self.kind_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::List(l) => l.hash(state),
            Value::Map(m) => {
                for (k, v) in m.iter() {
                    k.hash(state);
                    v.hash(state);
                }
            }
            Value::Record(r) => {
                for v in r.values() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                // Keep a decimal marker so `2.0` does not print as `2`
                // and re-parse as an integer (printer↔assembler
                // round-trips depend on it).
                let s = format!("{d}");
                if s.contains(['.', 'e', 'E', 'n', 'i']) {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => write!(f, "map[{} entries]", m.len()),
            Value::Record(r) => write!(f, "{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Record> for Value {
    fn from(r: Record) -> Self {
        Value::Record(Arc::new(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_kind_ordering_is_stable() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(5) < Value::str("a"));
    }

    #[test]
    fn numeric_cross_kind_comparison() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(2.5) > Value::Int(2));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-3).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(!Value::empty_map().is_truthy());
    }

    #[test]
    fn display_round_trips_simply() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::list(vec![1.into(), 2.into()]).to_string(), "[1, 2]");
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Value::Null.payload_size(), 0);
        assert_eq!(Value::Int(1).payload_size(), 8);
        assert_eq!(Value::str("abc").payload_size(), 3);
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(1.0) < nan);
    }
}
