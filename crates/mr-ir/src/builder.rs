//! An ergonomic builder for MR-IR functions.
//!
//! The builder allocates registers, resolves symbolic labels to
//! instruction indices, and produces a [`Function`] ready for the
//! verifier and interpreter. It plays the role of `javac`: workload
//! programs are written against this API and the analyzer only ever sees
//! the compiled artifact.
//!
//! ```
//! use mr_ir::builder::FunctionBuilder;
//! use mr_ir::instr::{CmpOp, ParamId};
//!
//! // void map(String k, WebPage v) { if (v.rank > 1) emit(k, 1); }
//! let mut b = FunctionBuilder::new("map");
//! let v = b.load_param(ParamId::Value);
//! let rank = b.get_field(v, "rank");
//! let one = b.const_int(1);
//! let cond = b.cmp(CmpOp::Gt, rank, one);
//! let (then_l, exit_l) = (b.fresh_label("then"), b.fresh_label("exit"));
//! b.br(cond, then_l, exit_l);
//! b.bind(then_l);
//! let k = b.load_param(ParamId::Key);
//! b.emit(k, one);
//! b.bind(exit_l);
//! b.ret();
//! let f = b.finish();
//! assert_eq!(f.emit_sites().len(), 1);
//! ```

use std::collections::HashMap;

use crate::function::Function;
use crate::instr::{BinOp, CmpOp, Instr, ParamId, Reg, SideEffectKind};
use crate::value::Value;

/// A symbolic jump target handed out by [`FunctionBuilder::fresh_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Function`] incrementally.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: u16,
    next_label: usize,
    bound: HashMap<Label, usize>,
    /// (instruction index, which slot, label) fixups to patch at finish.
    fixups: Vec<(usize, usize, Label)>,
    members: Vec<(String, Value)>,
}

impl FunctionBuilder {
    /// Start building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            next_label: 0,
            bound: HashMap::new(),
            fixups: Vec::new(),
            members: Vec::new(),
        }
    }

    /// Declare a mapper member variable with an initial value
    /// (a Java instance field).
    pub fn declare_member(&mut self, name: impl Into<String>, init: Value) {
        self.members.push((name.into(), init));
    }

    fn alloc(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register space exhausted");
        r
    }

    /// Create a new, unbound label. The `hint` is only for debugging.
    pub fn fresh_label(&mut self, _hint: &str) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Bind `label` to the current instruction position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let pos = self.instrs.len();
        let prev = self.bound.insert(label, pos);
        assert!(prev.is_none(), "label bound twice");
    }

    /// `dst = const val`.
    pub fn const_val(&mut self, val: Value) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::Const { dst, val });
        dst
    }

    /// `dst = const <int>`.
    pub fn const_int(&mut self, v: i64) -> Reg {
        self.const_val(Value::Int(v))
    }

    /// `dst = const <str>`.
    pub fn const_str(&mut self, s: &str) -> Reg {
        self.const_val(Value::str(s))
    }

    /// `dst = const <double>`.
    pub fn const_double(&mut self, v: f64) -> Reg {
        self.const_val(Value::Double(v))
    }

    /// `dst = src`.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::Move { dst, src });
        dst
    }

    /// Overwrite an existing register (models a local-variable
    /// reassignment, giving reaching-definitions something to do).
    pub fn mov_to(&mut self, dst: Reg, src: Reg) {
        self.instrs.push(Instr::Move { dst, src });
    }

    /// `dst = param`.
    pub fn load_param(&mut self, param: ParamId) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::LoadParam { dst, param });
        dst
    }

    /// `dst = obj.field`.
    pub fn get_field(&mut self, obj: Reg, field: &str) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::GetField {
            dst,
            obj,
            field: field.into(),
        });
        dst
    }

    /// `dst = lhs <op> rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::BinOp { dst, op, lhs, rhs });
        dst
    }

    /// Overwrite `dst` with `lhs <op> rhs` (local reassignment form).
    pub fn bin_to(&mut self, dst: Reg, op: BinOp, lhs: Reg, rhs: Reg) {
        self.instrs.push(Instr::BinOp { dst, op, lhs, rhs });
    }

    /// `dst = lhs <cmp> rhs`.
    pub fn cmp(&mut self, op: CmpOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::Cmp { dst, op, lhs, rhs });
        dst
    }

    /// `dst = !src`.
    pub fn not(&mut self, src: Reg) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::Not { dst, src });
        dst
    }

    /// `dst = func(args…)`.
    pub fn call(&mut self, func: &str, args: Vec<Reg>) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::Call {
            dst: Some(dst),
            func: func.into(),
            args,
        });
        dst
    }

    /// `func(args…)` discarding the result.
    pub fn call_void(&mut self, func: &str, args: Vec<Reg>) {
        self.instrs.push(Instr::Call {
            dst: None,
            func: func.into(),
            args,
        });
    }

    /// `dst = this.name`.
    pub fn get_member(&mut self, name: &str) -> Reg {
        let dst = self.alloc();
        self.instrs.push(Instr::GetMember {
            dst,
            name: name.into(),
        });
        dst
    }

    /// `this.name = src`.
    pub fn set_member(&mut self, name: &str, src: Reg) {
        self.instrs.push(Instr::SetMember {
            name: name.into(),
            src,
        });
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        let at = self.instrs.len();
        self.instrs.push(Instr::Jmp { target: usize::MAX });
        self.fixups.push((at, 0, label));
    }

    /// Branch to `then_l` when `cond` is truthy, else to `else_l`.
    pub fn br(&mut self, cond: Reg, then_l: Label, else_l: Label) {
        let at = self.instrs.len();
        self.instrs.push(Instr::Br {
            cond,
            then_tgt: usize::MAX,
            else_tgt: usize::MAX,
        });
        self.fixups.push((at, 0, then_l));
        self.fixups.push((at, 1, else_l));
    }

    /// `emit(key, value)`.
    pub fn emit(&mut self, key: Reg, value: Reg) {
        self.instrs.push(Instr::Emit { key, value });
    }

    /// A side effect (log/file/network/counter).
    pub fn side_effect(&mut self, kind: SideEffectKind, args: Vec<Reg>) {
        self.instrs.push(Instr::SideEffect { kind, args });
    }

    /// Return.
    pub fn ret(&mut self) {
        self.instrs.push(Instr::Ret);
    }

    /// Resolve labels and produce the function.
    ///
    /// # Panics
    /// Panics on unbound labels or a label past the instruction stream —
    /// these are construction bugs in the calling code.
    pub fn finish(mut self) -> Function {
        for (at, slot, label) in &self.fixups {
            let target = *self
                .bound
                .get(label)
                .unwrap_or_else(|| panic!("unbound label {label:?}"));
            assert!(target <= self.instrs.len(), "label {label:?} out of range");
            match (&mut self.instrs[*at], slot) {
                (Instr::Jmp { target: t }, _) => *t = target,
                (Instr::Br { then_tgt, .. }, 0) => *then_tgt = target,
                (Instr::Br { else_tgt, .. }, 1) => *else_tgt = target,
                _ => unreachable!("fixup on non-branch instruction"),
            }
        }
        Function {
            name: self.name,
            instrs: self.instrs,
            members: self.members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        let mut b = FunctionBuilder::new("f");
        let c = b.const_int(1);
        let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
        b.br(c, t, e);
        b.bind(t);
        let k = b.const_int(0);
        b.emit(k, c);
        b.bind(e);
        b.ret();
        let f = b.finish();
        match &f.instrs[1] {
            Instr::Br {
                then_tgt, else_tgt, ..
            } => {
                assert_eq!(*then_tgt, 2);
                assert_eq!(*else_tgt, 4);
            }
            other => panic!("expected Br, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = FunctionBuilder::new("f");
        let l = b.fresh_label("x");
        b.jmp(l);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = FunctionBuilder::new("f");
        let l = b.fresh_label("x");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn member_declarations_survive() {
        let mut b = FunctionBuilder::new("f");
        b.declare_member("numMapsRun", Value::Int(0));
        b.ret();
        let f = b.finish();
        assert_eq!(f.member_initial("numMapsRun"), Some(&Value::Int(0)));
    }

    #[test]
    fn backward_jump_builds_loop() {
        let mut b = FunctionBuilder::new("f");
        let head = b.fresh_label("head");
        let exit = b.fresh_label("exit");
        b.bind(head);
        let c = b.const_int(0);
        b.br(c, head, exit);
        b.bind(exit);
        b.ret();
        let f = b.finish();
        match &f.instrs[1] {
            Instr::Br { then_tgt, .. } => assert_eq!(*then_tgt, 0),
            _ => panic!(),
        }
    }
}
