//! # MR-IR — the compiled-program substrate for Manimal
//!
//! The Manimal paper analyzes *compiled, unmodified* MapReduce programs:
//! JVM bytecode inspected through the ASM library. This crate provides
//! the equivalent artifact for the Rust reproduction: **MR-IR**, a small
//! register-based intermediate representation with
//!
//! * a typed [`value`] model and record [`schema`]s ("the code that
//!   serializes these classes effectively declares the file's schema"),
//! * an [`instr`]uction set with branches, field reads, library
//!   [`stdlib`] calls (with analyzer-visible purity), mapper member
//!   variables, and an `emit` primitive,
//! * a [`builder`] API, a textual [`asm`] assembler (the "compilers") and
//!   a re-parseable [`printer`],
//! * a [`verify`] pass (the bytecode verifier), and
//! * an [`interp`]reter used by the execution fabric to run map tasks.
//!
//! Static analysis itself (CFGs, reaching definitions, the selection /
//! projection / compression detectors) lives in the `mr-analysis` crate;
//! this crate deliberately knows nothing about optimization.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod builder;
pub mod error;
pub mod function;
pub mod instr;
pub mod interp;
pub mod printer;
pub mod record;
pub mod schema;
pub mod stdlib;
pub mod value;
pub mod verify;

pub use error::IrError;
pub use function::{Function, Program};
pub use instr::{BinOp, CmpOp, Instr, ParamId, Reg, SideEffectKind};
pub use record::{record, Record, RecordError};
pub use schema::{FieldDef, FieldType, Schema};
pub use value::Value;
