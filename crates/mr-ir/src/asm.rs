//! A textual assembler for MR-IR.
//!
//! The assembly syntax mirrors the printer output of
//! [`Function`](crate::function::Function#impl-Display-for-Function) closely enough that programs
//! in docs, tests and examples stay readable:
//!
//! ```text
//! func map(key, value) {
//!   member numMapsRun = 0
//!   r0 = param value
//!   r1 = field r0.rank
//!   r2 = const 1
//!   r3 = cmp gt r1, r2
//!   br r3, then, exit
//! then:
//!   r4 = param key
//!   emit r4, r2
//! exit:
//!   ret
//! }
//! ```

use std::collections::HashMap;

use crate::function::Function;
use crate::instr::{BinOp, CmpOp, Instr, ParamId, Reg, SideEffectKind};
use crate::value::Value;

/// Assembly parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parse one function from assembly text.
pub fn parse_function(src: &str) -> Result<Function, AsmError> {
    let mut name = String::from("map");
    let mut members: Vec<(String, Value)> = Vec::new();
    // First pass: collect label positions (indices into the pending
    // instruction list), second pass resolves them.
    let mut pending: Vec<(usize, PendingInstr)> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut in_body = false;
    let mut saw_close = false;

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if !in_body {
            let rest = line
                .strip_prefix("func ")
                .ok_or_else(|| err(line_no, "expected `func <name>(key, value) {`"))?;
            let open = rest
                .find('(')
                .ok_or_else(|| err(line_no, "expected `(` in func header"))?;
            name = rest[..open].trim().to_string();
            if !rest.trim_end().ends_with('{') {
                return Err(err(line_no, "func header must end with `{`"));
            }
            in_body = true;
            continue;
        }
        if line == "}" {
            saw_close = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("member ") {
            // Disambiguate `member n = 0` (declaration, literal RHS)
            // from `member n = r2` (store instruction, register RHS).
            let (mname, init) = rest
                .split_once('=')
                .ok_or_else(|| err(line_no, "member needs `= <initial>` or `= rN`"))?;
            let rhs = init.trim();
            let is_reg = rhs.len() > 1
                && rhs.starts_with('r')
                && rhs[1..].chars().all(|c| c.is_ascii_digit());
            if !is_reg {
                if !pending.is_empty() || !labels.is_empty() {
                    return Err(err(
                        line_no,
                        "member declarations must precede instructions",
                    ));
                }
                members.push((mname.trim().to_string(), parse_literal(rhs, line_no)?));
                continue;
            }
            // Fall through to instruction parsing below.
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if labels.insert(label.to_string(), pending.len()).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            continue;
        }
        pending.push((line_no, parse_instr_line(line, line_no)?));
    }

    if !in_body {
        return Err(err(1, "no `func` header found"));
    }
    if !saw_close {
        return Err(err(src.lines().count(), "missing closing `}`"));
    }

    let n = pending.len();
    let resolve = |label: &str, line: usize| -> Result<usize, AsmError> {
        labels
            .get(label)
            .copied()
            .ok_or_else(|| err(line, format!("unknown label `{label}`")))
            .and_then(|t| {
                if t <= n {
                    Ok(t)
                } else {
                    Err(err(line, format!("label `{label}` out of range")))
                }
            })
    };

    let mut instrs = Vec::with_capacity(n);
    for (line, p) in pending {
        instrs.push(match p {
            PendingInstr::Done(i) => i,
            PendingInstr::Jmp(label) => Instr::Jmp {
                target: resolve(&label, line)?,
            },
            PendingInstr::Br(cond, t, e) => Instr::Br {
                cond,
                then_tgt: resolve(&t, line)?,
                else_tgt: resolve(&e, line)?,
            },
        });
    }
    Ok(Function {
        name,
        instrs,
        members,
    })
}

enum PendingInstr {
    Done(Instr),
    Jmp(String),
    Br(Reg, String, String),
}

fn strip_comment(line: &str) -> &str {
    // Comments start with `;` or `//` outside string literals.
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b';' if !in_str => return &line[..i],
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    tok.strip_prefix('r')
        .and_then(|d| d.parse::<u16>().ok())
        .map(Reg)
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))
}

fn parse_literal(tok: &str, line: usize) -> Result<Value, AsmError> {
    let tok = tok.trim();
    if tok == "null" {
        return Ok(Value::Null);
    }
    if tok == "true" {
        return Ok(Value::Bool(true));
    }
    if tok == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = tok.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| err(line, "unterminated string literal"))?;
        return Ok(Value::str(unescape(inner)));
    }
    if tok.contains('.') || tok.contains('e') || tok.contains('E') {
        if let Ok(d) = tok.parse::<f64>() {
            return Ok(Value::Double(d));
        }
    }
    tok.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(line, format!("bad literal `{tok}`")))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_binop(tok: &str) -> Option<BinOp> {
    Some(match tok {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "concat" => BinOp::Concat,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        _ => return None,
    })
}

fn parse_cmpop(tok: &str, line: usize) -> Result<CmpOp, AsmError> {
    Ok(match tok {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(err(line, format!("unknown comparison `{other}`"))),
    })
}

fn parse_effect_kind(tok: &str, line: usize) -> Result<SideEffectKind, AsmError> {
    Ok(match tok {
        "log" => SideEffectKind::Log,
        "filewrite" => SideEffectKind::FileWrite,
        "network" => SideEffectKind::Network,
        "counter" => SideEffectKind::Counter,
        other => return Err(err(line, format!("unknown effect kind `{other}`"))),
    })
}

fn parse_call_args(argstr: &str, line: usize) -> Result<Vec<Reg>, AsmError> {
    let argstr = argstr.trim();
    if argstr.is_empty() {
        return Ok(vec![]);
    }
    argstr.split(',').map(|a| parse_reg(a, line)).collect()
}

fn parse_instr_line(line: &str, ln: usize) -> Result<PendingInstr, AsmError> {
    // Non-assignment forms first.
    if line == "ret" {
        return Ok(PendingInstr::Done(Instr::Ret));
    }
    if let Some(rest) = line.strip_prefix("jmp ") {
        return Ok(PendingInstr::Jmp(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix("br ") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(err(ln, "br needs `br rN, then_label, else_label`"));
        }
        return Ok(PendingInstr::Br(
            parse_reg(parts[0], ln)?,
            parts[1].to_string(),
            parts[2].to_string(),
        ));
    }
    if let Some(rest) = line.strip_prefix("emit ") {
        let (k, v) = rest
            .split_once(',')
            .ok_or_else(|| err(ln, "emit needs two registers"))?;
        return Ok(PendingInstr::Done(Instr::Emit {
            key: parse_reg(k, ln)?,
            value: parse_reg(v, ln)?,
        }));
    }
    if let Some(rest) = line.strip_prefix("effect ") {
        let open = rest.find('(').ok_or_else(|| err(ln, "effect needs `(`"))?;
        let close = rest.rfind(')').ok_or_else(|| err(ln, "effect needs `)`"))?;
        return Ok(PendingInstr::Done(Instr::SideEffect {
            kind: parse_effect_kind(rest[..open].trim(), ln)?,
            args: parse_call_args(&rest[open + 1..close], ln)?,
        }));
    }
    if let Some(rest) = line.strip_prefix("call ") {
        let open = rest.find('(').ok_or_else(|| err(ln, "call needs `(`"))?;
        let close = rest.rfind(')').ok_or_else(|| err(ln, "call needs `)`"))?;
        return Ok(PendingInstr::Done(Instr::Call {
            dst: None,
            func: rest[..open].trim().to_string(),
            args: parse_call_args(&rest[open + 1..close], ln)?,
        }));
    }
    if let Some(rest) = line.strip_prefix("member ") {
        // `member name = rN` (store form; loads are assignments).
        let (mname, src) = rest
            .split_once('=')
            .ok_or_else(|| err(ln, "member store needs `member <name> = rN`"))?;
        return Ok(PendingInstr::Done(Instr::SetMember {
            name: mname.trim().to_string(),
            src: parse_reg(src, ln)?,
        }));
    }

    // Assignment forms: `rN = <rhs>`.
    let (dst_s, rhs) = line
        .split_once('=')
        .ok_or_else(|| err(ln, format!("unrecognized instruction `{line}`")))?;
    let dst = parse_reg(dst_s, ln)?;
    let rhs = rhs.trim();

    if let Some(rest) = rhs.strip_prefix("const ") {
        return Ok(PendingInstr::Done(Instr::Const {
            dst,
            val: parse_literal(rest, ln)?,
        }));
    }
    if let Some(rest) = rhs.strip_prefix("param ") {
        let param = match rest.trim() {
            "key" => ParamId::Key,
            "value" => ParamId::Value,
            other => return Err(err(ln, format!("unknown param `{other}`"))),
        };
        return Ok(PendingInstr::Done(Instr::LoadParam { dst, param }));
    }
    if let Some(rest) = rhs.strip_prefix("field ") {
        let (obj, field) = rest
            .split_once('.')
            .ok_or_else(|| err(ln, "field needs `rN.<name>`"))?;
        return Ok(PendingInstr::Done(Instr::GetField {
            dst,
            obj: parse_reg(obj, ln)?,
            field: field.trim().to_string(),
        }));
    }
    if let Some(rest) = rhs.strip_prefix("cmp ") {
        let mut it = rest.splitn(2, ' ');
        let op = parse_cmpop(it.next().unwrap_or(""), ln)?;
        let operands = it.next().ok_or_else(|| err(ln, "cmp needs operands"))?;
        let (l, r) = operands
            .split_once(',')
            .ok_or_else(|| err(ln, "cmp needs two operands"))?;
        return Ok(PendingInstr::Done(Instr::Cmp {
            dst,
            op,
            lhs: parse_reg(l, ln)?,
            rhs: parse_reg(r, ln)?,
        }));
    }
    if let Some(rest) = rhs.strip_prefix("not ") {
        return Ok(PendingInstr::Done(Instr::Not {
            dst,
            src: parse_reg(rest, ln)?,
        }));
    }
    if let Some(rest) = rhs.strip_prefix("call ") {
        let open = rest.find('(').ok_or_else(|| err(ln, "call needs `(`"))?;
        let close = rest.rfind(')').ok_or_else(|| err(ln, "call needs `)`"))?;
        return Ok(PendingInstr::Done(Instr::Call {
            dst: Some(dst),
            func: rest[..open].trim().to_string(),
            args: parse_call_args(&rest[open + 1..close], ln)?,
        }));
    }
    if let Some(rest) = rhs.strip_prefix("member ") {
        return Ok(PendingInstr::Done(Instr::GetMember {
            dst,
            name: rest.trim().to_string(),
        }));
    }
    // `rN = <binop> rA, rB`
    if let Some((op_tok, operands)) = rhs.split_once(' ') {
        if let Some(op) = parse_binop(op_tok) {
            let (l, r) = operands
                .split_once(',')
                .ok_or_else(|| err(ln, "binop needs two operands"))?;
            return Ok(PendingInstr::Done(Instr::BinOp {
                dst,
                op,
                lhs: parse_reg(l, ln)?,
                rhs: parse_reg(r, ln)?,
            }));
        }
    }
    // Plain move: `rN = rM`.
    if rhs.starts_with('r') && rhs[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(PendingInstr::Done(Instr::Move {
            dst,
            src: parse_reg(rhs, ln)?,
        }));
    }
    Err(err(ln, format!("unrecognized right-hand side `{rhs}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::record::record;
    use crate::schema::{FieldType, Schema};
    use crate::verify::verify;

    const SELECT_SRC: &str = r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.rank
          r2 = const 1
          r3 = cmp gt r1, r2
          br r3, then, exit
        then:
          r4 = param key
          emit r4, r2
        exit:
          ret
        }
    "#;

    #[test]
    fn parse_and_run_selection() {
        let f = parse_function(SELECT_SRC).unwrap();
        assert!(verify(&f).is_ok());
        let s = Schema::new("W", vec![("rank", FieldType::Int)]).into_arc();
        let mut interp = Interpreter::new(&f);
        let out = interp
            .invoke_map(&f, &Value::str("k"), &record(&s, vec![5.into()]).into())
            .unwrap();
        assert_eq!(out.emits.len(), 1);
        let out = interp
            .invoke_map(&f, &Value::str("k"), &record(&s, vec![0.into()]).into())
            .unwrap();
        assert!(out.emits.is_empty());
    }

    #[test]
    fn members_comments_and_effects() {
        let src = r#"
            func map(key, value) {      ; the Fig. 2 program
              member numMapsRun = 0
              r0 = member numMapsRun    // load counter
              r1 = const 1
              r2 = add r0, r1
              member numMapsRun = r2
              effect log(r2)
              ret
            }
        "#;
        let f = parse_function(src).unwrap();
        assert_eq!(f.members, vec![("numMapsRun".to_string(), Value::Int(0))]);
        assert!(verify(&f).is_ok());
        assert!(matches!(f.instrs[4], Instr::SideEffect { .. }));
    }

    #[test]
    fn literals() {
        assert_eq!(parse_literal("42", 1).unwrap(), Value::Int(42));
        assert_eq!(parse_literal("-7", 1).unwrap(), Value::Int(-7));
        assert_eq!(parse_literal("2.5", 1).unwrap(), Value::Double(2.5));
        assert_eq!(parse_literal("true", 1).unwrap(), Value::Bool(true));
        assert_eq!(parse_literal("null", 1).unwrap(), Value::Null);
        assert_eq!(parse_literal("\"a b\"", 1).unwrap(), Value::str("a b"));
        assert_eq!(
            parse_literal(r#""tab\there""#, 1).unwrap(),
            Value::str("tab\there")
        );
        assert!(parse_literal("wat", 1).is_err());
    }

    #[test]
    fn calls_parse() {
        let src = r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = const ".html"
              r3 = call str.ends_with(r1, r2)
              call str.len(r1)
              ret
            }
        "#;
        let f = parse_function(src).unwrap();
        assert!(matches!(
            &f.instrs[3],
            Instr::Call { dst: Some(_), func, .. } if func == "str.ends_with"
        ));
        assert!(matches!(&f.instrs[4], Instr::Call { dst: None, .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "func map(key, value) {\n  r0 = wat 1\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_label_rejected() {
        let src = "func map(key, value) {\n  jmp nowhere\n}\n";
        let e = parse_function(src).unwrap_err();
        assert!(e.message.contains("unknown label"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let src = "func f(key, value) {\nx:\nx:\n  ret\n}\n";
        let e = parse_function(src).unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn missing_close_rejected() {
        let src = "func f(key, value) {\n  ret\n";
        assert!(parse_function(src).is_err());
    }

    #[test]
    fn label_at_end_resolves_past_last_instr() {
        // A label binding to one-past-the-end would produce a jump out of
        // range at runtime; the verifier catches it, but parsing succeeds
        // only when the target is within range. `exit:` right before `}`
        // with no trailing instruction binds to index == len; keep the
        // parser permissive and let verify() reject it.
        let src = "func f(key, value) {\n  jmp exit\nexit:\n}\n";
        let f = parse_function(src).unwrap();
        assert!(crate::verify::verify(&f).is_err());
    }
}
