//! Functions and programs.

use std::fmt;
use std::sync::Arc;

use crate::instr::{Instr, Reg};
use crate::schema::Schema;
use crate::value::Value;

/// A compiled MR-IR function: a linear instruction stream plus the
/// mapper-object member variables it may touch.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name, for diagnostics.
    pub name: String,
    /// The instruction stream. Branch targets are indices into this
    /// vector. Execution begins at index 0.
    pub instrs: Vec<Instr>,
    /// Mapper instance fields with their initial values (the state that
    /// persists across `map()` invocations within a task).
    pub members: Vec<(String, Value)>,
}

impl Function {
    /// Number of registers used (1 + highest register index), for
    /// interpreter frame allocation.
    pub fn num_regs(&self) -> usize {
        let mut max: Option<u16> = None;
        for instr in &self.instrs {
            if let Some(Reg(d)) = instr.def() {
                max = Some(max.map_or(d, |m| m.max(d)));
            }
            for Reg(u) in instr.uses() {
                max = Some(max.map_or(u, |m| m.max(u)));
            }
        }
        max.map_or(0, |m| m as usize + 1)
    }

    /// Indices of all emit instructions.
    pub fn emit_sites(&self) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_emit())
            .map(|(pc, _)| pc)
            .collect()
    }

    /// Initial value of the named member, if declared.
    pub fn member_initial(&self, name: &str) -> Option<&Value> {
        self.members.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}(key, value) {{", self.name)?;
        for (name, init) in &self.members {
            writeln!(f, "  member {name} = {init}")?;
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "  {pc:>3}: {instr}")?;
        }
        write!(f, "}}")
    }
}

/// A complete user-submitted MapReduce program, from the analyzer's
/// point of view: the compiled `map()` plus the declared input types
/// ("the code that serializes and deserializes these classes effectively
/// declares the file's schema", paper §2.2).
#[derive(Debug, Clone)]
pub struct Program {
    /// Job name.
    pub name: String,
    /// The compiled `map()` function.
    pub mapper: Function,
    /// Schema of the map value parameter.
    pub value_schema: Arc<Schema>,
    /// Whether the user requires final output in sorted key order. When
    /// true, direct-operation compression of the map output key is
    /// unsafe (paper §2.1 footnote 1).
    pub requires_sorted_output: bool,
    /// Whether the reduce stage writes the map key into the final
    /// output. When true (the conservative default), direct-operation
    /// compression of the emit key would leak dictionary codes into the
    /// program's output; only group-by jobs that drop the key (the
    /// paper's Table 6 program "does not in the end emit the URL; it
    /// simply uses destURL as the key parameter to reduce()") may
    /// operate directly on compressed keys.
    pub key_in_final_output: bool,
}

impl Program {
    /// Build a program with the common defaults (unsorted output).
    pub fn new(name: impl Into<String>, mapper: Function, value_schema: Arc<Schema>) -> Self {
        Program {
            name: name.into(),
            mapper,
            value_schema,
            requires_sorted_output: false,
            key_in_final_output: true,
        }
    }

    /// Declare that final output must be in sorted key order.
    pub fn with_sorted_output(mut self) -> Self {
        self.requires_sorted_output = true;
        self
    }

    /// Declare that the reduce stage never writes the map key into the
    /// final output (enables direct-operation on the emit key).
    pub fn with_key_dropped_from_output(mut self) -> Self {
        self.key_in_final_output = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, ParamId};
    use crate::schema::FieldType;

    fn sample() -> Function {
        Function {
            name: "map".into(),
            instrs: vec![
                Instr::LoadParam {
                    dst: Reg(0),
                    param: ParamId::Value,
                },
                Instr::GetField {
                    dst: Reg(1),
                    obj: Reg(0),
                    field: "rank".into(),
                },
                Instr::Const {
                    dst: Reg(2),
                    val: Value::Int(1),
                },
                Instr::Cmp {
                    dst: Reg(3),
                    op: CmpOp::Gt,
                    lhs: Reg(1),
                    rhs: Reg(2),
                },
                Instr::Br {
                    cond: Reg(3),
                    then_tgt: 5,
                    else_tgt: 6,
                },
                Instr::Emit {
                    key: Reg(1),
                    value: Reg(2),
                },
                Instr::Ret,
            ],
            members: vec![],
        }
    }

    #[test]
    fn num_regs_counts_highest() {
        assert_eq!(sample().num_regs(), 4);
        let empty = Function {
            name: "f".into(),
            instrs: vec![Instr::Ret],
            members: vec![],
        };
        assert_eq!(empty.num_regs(), 0);
    }

    #[test]
    fn emit_sites_found() {
        assert_eq!(sample().emit_sites(), vec![5]);
    }

    #[test]
    fn program_defaults() {
        let schema = Schema::new("W", vec![("rank", FieldType::Int)]).into_arc();
        let p = Program::new("job", sample(), schema);
        assert!(!p.requires_sorted_output);
        assert!(p.with_sorted_output().requires_sorted_output);
    }

    #[test]
    fn display_contains_pcs() {
        let text = sample().to_string();
        assert!(text.contains("0: r0 = param value"));
        assert!(text.contains("emit"));
    }
}
