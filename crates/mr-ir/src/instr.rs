//! The MR-IR instruction set.
//!
//! MR-IR is a register machine over [`Value`]s. A function body is a
//! linear instruction stream with explicit branch targets (instruction
//! indices), the same shape a JVM bytecode method presents to the ASM
//! library the paper's analyzer is built on. Control-flow analysis
//! (basic blocks, CFG) is performed by `mr-analysis`, not assumed here.
//!
//! Design notes relevant to the analyzer:
//!
//! * [`Instr::GetMember`] / [`Instr::SetMember`] model Java instance
//!   fields on the `Mapper` object. State stored there survives across
//!   `map()` invocations within a task — the hazard of the paper's
//!   Fig. 2 (`numMapsRun`).
//! * [`Instr::Call`] invokes a function from the [`stdlib`](crate::stdlib)
//!   registry. Whether a call is *known pure* is metadata of the
//!   registry, mirroring the analyzer's "built-in knowledge of standard
//!   language operations and some common class library methods".
//! * [`Instr::SideEffect`] models debug logging, file writes and network
//!   traffic — effects the analyzer may optimize away because they do
//!   not influence the program's reduce-visible output (paper §2.2).

use std::fmt;

use crate::value::Value;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Which `map(key, value)` parameter a [`Instr::LoadParam`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamId {
    /// The map key (e.g. a file offset or a `String` key).
    Key,
    /// The map value (the deserialized record).
    Value,
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamId::Key => f.write_str("key"),
            ParamId::Value => f.write_str("value"),
        }
    }
}

/// Arithmetic / string operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division (integer division on two ints).
    Div,
    /// Remainder.
    Rem,
    /// String concatenation.
    Concat,
    /// Logical AND on truthiness (non-short-circuit, like a bytecode `&`).
    And,
    /// Logical OR on truthiness.
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Concat => "concat",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The operator testing the negated relation.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the comparison on two runtime values.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        let ord = lhs.cmp(rhs);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Kinds of output-invisible side effects (paper §2.2: debugging
/// statements, network connections, file-writes — "Manimal can currently
/// detect, though not optimize, such side effects").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SideEffectKind {
    /// Debug/progress logging.
    Log,
    /// Writing to a side file.
    FileWrite,
    /// Opening a network connection / sending a message.
    Network,
    /// Incrementing a framework counter.
    Counter,
}

impl fmt::Display for SideEffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SideEffectKind::Log => "log",
            SideEffectKind::FileWrite => "filewrite",
            SideEffectKind::Network => "network",
            SideEffectKind::Counter => "counter",
        };
        f.write_str(s)
    }
}

/// One MR-IR instruction. Branch targets are absolute instruction
/// indices within the owning function.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = constant`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        val: Value,
    },
    /// `dst = src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = <map parameter>`.
    LoadParam {
        /// Destination register.
        dst: Reg,
        /// Which parameter.
        param: ParamId,
    },
    /// `dst = obj.field` — a typed field read from a deserialized record.
    GetField {
        /// Destination register.
        dst: Reg,
        /// Register holding the record.
        obj: Reg,
        /// Field name.
        field: String,
    },
    /// `dst = lhs <op> rhs`.
    BinOp {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs <cmp> rhs`, producing a bool.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = !src` (logical negation of truthiness).
    Not {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = func(args…)` — a library call resolved through the
    /// [`stdlib`](crate::stdlib) registry.
    Call {
        /// Destination register (`None` for void calls).
        dst: Option<Reg>,
        /// Registry name, e.g. `"str.contains"`.
        func: String,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// `dst = this.<name>` — read a mapper instance field.
    GetMember {
        /// Destination register.
        dst: Reg,
        /// Member name.
        name: String,
    },
    /// `this.<name> = src` — write a mapper instance field.
    SetMember {
        /// Member name.
        name: String,
        /// Source register.
        src: Reg,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch on the truthiness of `cond`.
    Br {
        /// Condition register.
        cond: Reg,
        /// Target when truthy.
        then_tgt: usize,
        /// Target when falsy.
        else_tgt: usize,
    },
    /// Emit a `(key, value)` pair to the shuffle.
    Emit {
        /// Key register.
        key: Reg,
        /// Value register.
        value: Reg,
    },
    /// An output-invisible side effect.
    SideEffect {
        /// What kind of effect.
        kind: SideEffectKind,
        /// Arguments (e.g. the logged values).
        args: Vec<Reg>,
    },
    /// Return from the function.
    Ret,
}

impl Instr {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::LoadParam { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::BinOp { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::GetMember { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Const { .. }
            | Instr::LoadParam { .. }
            | Instr::GetMember { .. }
            | Instr::Jmp { .. }
            | Instr::Ret => vec![],
            Instr::Move { src, .. } | Instr::Not { src, .. } => vec![*src],
            Instr::GetField { obj, .. } => vec![*obj],
            Instr::BinOp { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Call { args, .. } => args.clone(),
            Instr::SetMember { src, .. } => vec![*src],
            Instr::Br { cond, .. } => vec![*cond],
            Instr::Emit { key, value } => vec![*key, *value],
            Instr::SideEffect { args, .. } => args.clone(),
        }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jmp { .. } | Instr::Br { .. } | Instr::Ret)
    }

    /// Whether this instruction emits data to the reduce step — the
    /// paper's `isEmit(s)` predicate (Fig. 3).
    pub fn is_emit(&self) -> bool {
        matches!(self, Instr::Emit { .. })
    }

    /// Successor instruction indices given this instruction's own index.
    /// Non-terminators fall through to `pc + 1`.
    pub fn successors(&self, pc: usize) -> Vec<usize> {
        match self {
            Instr::Jmp { target } => vec![*target],
            Instr::Br {
                then_tgt, else_tgt, ..
            } => {
                if then_tgt == else_tgt {
                    vec![*then_tgt]
                } else {
                    vec![*then_tgt, *else_tgt]
                }
            }
            Instr::Ret => vec![],
            _ => vec![pc + 1],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, val } => write!(f, "{dst} = const {val}"),
            Instr::Move { dst, src } => write!(f, "{dst} = {src}"),
            Instr::LoadParam { dst, param } => write!(f, "{dst} = param {param}"),
            Instr::GetField { dst, obj, field } => write!(f, "{dst} = field {obj}.{field}"),
            Instr::BinOp { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Instr::Cmp { dst, op, lhs, rhs } => write!(f, "{dst} = cmp {op} {lhs}, {rhs}"),
            Instr::Not { dst, src } => write!(f, "{dst} = not {src}"),
            Instr::Call { dst, func, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = call {func}(")?;
                } else {
                    write!(f, "call {func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::GetMember { dst, name } => write!(f, "{dst} = member {name}"),
            Instr::SetMember { name, src } => write!(f, "member {name} = {src}"),
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::Br {
                cond,
                then_tgt,
                else_tgt,
            } => write!(f, "br {cond}, @{then_tgt}, @{else_tgt}"),
            Instr::Emit { key, value } => write!(f, "emit {key}, {value}"),
            Instr::SideEffect { kind, args } => {
                write!(f, "effect {kind}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Instr::BinOp {
            dst: Reg(2),
            op: BinOp::Add,
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0), Reg(1)]);

        let e = Instr::Emit {
            key: Reg(0),
            value: Reg(1),
        };
        assert_eq!(e.def(), None);
        assert!(e.is_emit());
    }

    #[test]
    fn successors_of_terminators() {
        let br = Instr::Br {
            cond: Reg(0),
            then_tgt: 5,
            else_tgt: 9,
        };
        assert_eq!(br.successors(2), vec![5, 9]);
        assert_eq!(Instr::Ret.successors(2), Vec::<usize>::new());
        assert_eq!(Instr::Jmp { target: 7 }.successors(0), vec![7]);
        let fall = Instr::Const {
            dst: Reg(0),
            val: Value::Int(1),
        };
        assert_eq!(fall.successors(3), vec![4]);
    }

    #[test]
    fn branch_with_equal_targets_has_one_successor() {
        let br = Instr::Br {
            cond: Reg(0),
            then_tgt: 4,
            else_tgt: 4,
        };
        assert_eq!(br.successors(0), vec![4]);
    }

    #[test]
    fn cmp_negate_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Gt.eval(&Value::Int(2), &Value::Int(1)));
        assert!(CmpOp::Le.eval(&Value::str("a"), &Value::str("b")));
        assert!(!CmpOp::Eq.eval(&Value::Int(1), &Value::str("1")));
    }
}
