//! Record schemas.
//!
//! MapReduce inputs are flat files of serialized objects; the class that
//! serializes and deserializes them "effectively declares the file's
//! schema" (paper §2.2). A [`Schema`] is that declaration: an ordered
//! list of named, typed fields.
//!
//! A schema may be **opaque**: the class uses a custom serialization
//! format whose field boundaries are invisible to anyone but the class's
//! own code. This models the `AbstractTuple` class of Pavlo Benchmark 1,
//! which caused the paper's analyzer to miss the projection and
//! delta-compression opportunities (Table 1) while still detecting the
//! selection.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// The serialized type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Boolean, one byte.
    Bool,
    /// 32-bit integer on disk, widens to `Value::Int` in memory.
    Int,
    /// 64-bit integer.
    Long,
    /// 64-bit IEEE float.
    Double,
    /// Length-prefixed UTF-8 string.
    Str,
    /// Length-prefixed byte array.
    Bytes,
}

impl FieldType {
    /// Whether delta-compression applies to this type (paper App. C:
    /// "analyzer simply tests whether the serialized key and value
    /// inputs to map() contain numeric values").
    pub fn is_numeric(&self) -> bool {
        matches!(self, FieldType::Int | FieldType::Long | FieldType::Double)
    }

    /// The default value used when a projected-away field is
    /// reconstructed for the interpreter.
    pub fn default_value(&self) -> Value {
        match self {
            FieldType::Bool => Value::Bool(false),
            FieldType::Int | FieldType::Long => Value::Int(0),
            FieldType::Double => Value::Double(0.0),
            FieldType::Str => Value::str(""),
            FieldType::Bytes => Value::bytes([]),
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Bool => "bool",
            FieldType::Int => "int",
            FieldType::Long => "long",
            FieldType::Double => "double",
            FieldType::Str => "str",
            FieldType::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// A single named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique within the schema.
    pub name: String,
    /// Serialized type.
    pub ty: FieldType,
}

/// An ordered record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// The record class name (e.g. `WebPage`), for diagnostics and
    /// catalog entries.
    name: String,
    fields: Vec<FieldDef>,
    /// Opaque schemas hide field boundaries from the analyzer; see the
    /// module docs.
    opaque: bool,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two fields share a name — schemas are static program
    /// metadata, so this is a programming error, not a runtime error.
    pub fn new(name: impl Into<String>, fields: Vec<(&str, FieldType)>) -> Self {
        let fields: Vec<FieldDef> = fields
            .into_iter()
            .map(|(n, ty)| FieldDef {
                name: n.to_string(),
                ty,
            })
            .collect();
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name {:?}",
                f.name
            );
        }
        Schema {
            name: name.into(),
            fields,
            opaque: false,
        }
    }

    /// Mark this schema as using a custom, analyzer-opaque serialization
    /// format (the `AbstractTuple` pattern of Pavlo Benchmark 1).
    pub fn opaque(mut self) -> Self {
        self.opaque = true;
        self
    }

    /// The record class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether field boundaries are hidden from static analysis.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// All fields, in serialization order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all fields, in order. This is the `paramFields` input of
    /// the paper's `findProject` (Fig. 6).
    pub fn field_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Names of numeric fields (delta-compression candidates).
    pub fn numeric_fields(&self) -> Vec<String> {
        self.fields
            .iter()
            .filter(|f| f.ty.is_numeric())
            .map(|f| f.name.clone())
            .collect()
    }

    /// Derive the schema of a projection of this schema onto `keep`,
    /// preserving serialization order. Unknown names are ignored.
    pub fn project(&self, keep: &[String]) -> Schema {
        Schema {
            name: format!("{}#proj", self.name),
            fields: self
                .fields
                .iter()
                .filter(|f| keep.iter().any(|k| k == &f.name))
                .cloned()
                .collect(),
            opaque: self.opaque,
        }
    }

    /// Shared-ownership handle used throughout the stack.
    pub fn into_arc(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fd.ty, fd.name)?;
        }
        write!(f, ")")?;
        if self.opaque {
            write!(f, " [opaque]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn webpage() -> Schema {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
    }

    #[test]
    fn index_and_lookup() {
        let s = webpage();
        assert_eq!(s.index_of("rank"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.field("url").unwrap().ty, FieldType::Str);
    }

    #[test]
    fn numeric_fields_listed() {
        assert_eq!(webpage().numeric_fields(), vec!["rank".to_string()]);
    }

    #[test]
    fn projection_preserves_order() {
        let p = webpage().project(&["content".into(), "url".into()]);
        assert_eq!(p.field_names(), vec!["url", "content"]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_fields_rejected() {
        Schema::new("X", vec![("a", FieldType::Int), ("a", FieldType::Str)]);
    }

    #[test]
    fn opaque_flag_propagates_through_projection() {
        let s = webpage().opaque();
        assert!(s.is_opaque());
        assert!(s.project(&["url".into()]).is_opaque());
    }

    #[test]
    fn display_format() {
        let s = webpage();
        assert_eq!(s.to_string(), "WebPage (str url, int rank, str content)");
    }
}
