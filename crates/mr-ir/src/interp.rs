//! The MR-IR interpreter.
//!
//! The execution fabric runs one [`Interpreter`] per map task. Member
//! variables persist across `map()` invocations within a task — exactly
//! the Java `Mapper`-object lifetime that makes the paper's Fig. 2
//! program unsafe to optimize.

use std::collections::HashMap;

use crate::error::IrError;
use crate::function::Function;
use crate::instr::{BinOp, Instr, ParamId, SideEffectKind};
use crate::stdlib::stdlib;
use crate::value::Value;

/// Everything a single `map()` invocation produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapOutput {
    /// `(key, value)` pairs sent to the shuffle.
    pub emits: Vec<(Value, Value)>,
    /// Output-invisible side effects, recorded for inspection.
    pub effects: Vec<(SideEffectKind, Vec<Value>)>,
    /// Instructions executed (for work accounting in benchmarks).
    pub instructions_executed: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum instructions per invocation before [`IrError::FuelExhausted`].
    pub fuel: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        // Generous: real map functions are tiny; this only exists to
        // turn accidental infinite loops into errors.
        InterpConfig { fuel: 10_000_000 }
    }
}

/// A map-task interpreter holding cross-invocation member state.
#[derive(Debug)]
pub struct Interpreter {
    config: InterpConfig,
    members: HashMap<String, Value>,
    /// Scratch register frame, reused across invocations to avoid
    /// per-record allocation.
    frame: Vec<Option<Value>>,
}

impl Interpreter {
    /// Create an interpreter for one task running `func`, initializing
    /// member variables to their declared values.
    pub fn new(func: &Function) -> Self {
        Self::with_config(func, InterpConfig::default())
    }

    /// Create with an explicit configuration.
    pub fn with_config(func: &Function, config: InterpConfig) -> Self {
        Interpreter {
            config,
            members: func
                .members
                .iter()
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
            frame: vec![None; func.num_regs()],
        }
    }

    /// Current value of a member variable (used by tests to observe the
    /// Fig. 2 hazard).
    pub fn member(&self, name: &str) -> Option<&Value> {
        self.members.get(name)
    }

    /// Run one `map(key, value)` invocation.
    pub fn invoke_map(
        &mut self,
        func: &Function,
        key: &Value,
        value: &Value,
    ) -> Result<MapOutput, IrError> {
        if self.frame.len() < func.num_regs() {
            self.frame.resize(func.num_regs(), None);
        }
        for slot in &mut self.frame {
            *slot = None;
        }
        let mut out = MapOutput::default();
        let mut pc: usize = 0;
        let mut fuel = self.config.fuel;
        let lib = stdlib();

        loop {
            let instr = func.instrs.get(pc).ok_or(IrError::FellOffEnd)?;
            fuel = fuel.checked_sub(1).ok_or(IrError::FuelExhausted)?;
            out.instructions_executed += 1;
            match instr {
                Instr::Const { dst, val } => {
                    self.frame[dst.0 as usize] = Some(val.clone());
                }
                Instr::Move { dst, src } => {
                    let v = self.read(*src)?;
                    self.frame[dst.0 as usize] = Some(v);
                }
                Instr::LoadParam { dst, param } => {
                    let v = match param {
                        ParamId::Key => key.clone(),
                        ParamId::Value => value.clone(),
                    };
                    self.frame[dst.0 as usize] = Some(v);
                }
                Instr::GetField { dst, obj, field } => {
                    let v = self.read(*obj)?;
                    let rec = v.as_record().ok_or_else(|| IrError::Type {
                        context: format!("field .{field}"),
                        expected: "record",
                        got: v.kind_name(),
                    })?;
                    let fv = rec
                        .get(field)
                        .map_err(|_| IrError::NoSuchField(field.clone()))?
                        .clone();
                    self.frame[dst.0 as usize] = Some(fv);
                }
                Instr::BinOp { dst, op, lhs, rhs } => {
                    let l = self.read(*lhs)?;
                    let r = self.read(*rhs)?;
                    self.frame[dst.0 as usize] = Some(eval_binop(*op, &l, &r)?);
                }
                Instr::Cmp { dst, op, lhs, rhs } => {
                    let l = self.read(*lhs)?;
                    let r = self.read(*rhs)?;
                    self.frame[dst.0 as usize] = Some(Value::Bool(op.eval(&l, &r)));
                }
                Instr::Not { dst, src } => {
                    let v = self.read(*src)?;
                    self.frame[dst.0 as usize] = Some(Value::Bool(!v.is_truthy()));
                }
                Instr::Call {
                    dst,
                    func: name,
                    args,
                } => {
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|r| self.read(*r))
                        .collect::<Result<_, _>>()?;
                    let result = lib.eval(name, &argv)?;
                    if let Some(dst) = dst {
                        self.frame[dst.0 as usize] = Some(result);
                    }
                }
                Instr::GetMember { dst, name } => {
                    let v = self
                        .members
                        .get(name)
                        .ok_or_else(|| IrError::UnknownMember(name.clone()))?
                        .clone();
                    self.frame[dst.0 as usize] = Some(v);
                }
                Instr::SetMember { name, src } => {
                    let v = self.read(*src)?;
                    self.members.insert(name.clone(), v);
                }
                Instr::Jmp { target } => {
                    if *target >= func.instrs.len() {
                        return Err(IrError::BadJump(*target));
                    }
                    pc = *target;
                    continue;
                }
                Instr::Br {
                    cond,
                    then_tgt,
                    else_tgt,
                } => {
                    let t = self.read(*cond)?.is_truthy();
                    let target = if t { *then_tgt } else { *else_tgt };
                    if target >= func.instrs.len() {
                        return Err(IrError::BadJump(target));
                    }
                    pc = target;
                    continue;
                }
                Instr::Emit { key: k, value: v } => {
                    let kv = self.read(*k)?;
                    let vv = self.read(*v)?;
                    out.emits.push((kv, vv));
                }
                Instr::SideEffect { kind, args } => {
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|r| self.read(*r))
                        .collect::<Result<_, _>>()?;
                    out.effects.push((*kind, argv));
                }
                Instr::Ret => return Ok(out),
            }
            pc += 1;
        }
    }

    fn read(&self, reg: crate::instr::Reg) -> Result<Value, IrError> {
        self.frame[reg.0 as usize]
            .clone()
            .ok_or(IrError::UnboundRegister(reg))
    }
}

/// Evaluate a binary operator on two values.
pub fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, IrError> {
    let type_err = |expected: &'static str, got: &Value| IrError::Type {
        context: format!("binop {op}"),
        expected,
        got: got.kind_name(),
    };
    match op {
        BinOp::Concat => {
            let a = l.as_str().ok_or_else(|| type_err("str", l))?;
            let b = r.as_str().ok_or_else(|| type_err("str", r))?;
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::from(s))
        }
        BinOp::And => Ok(Value::Bool(l.is_truthy() && r.is_truthy())),
        BinOp::Or => Ok(Value::Bool(l.is_truthy() || r.is_truthy())),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.wrapping_add(*b),
                    BinOp::Sub => a.wrapping_sub(*b),
                    BinOp::Mul => a.wrapping_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(IrError::DivByZero);
                        }
                        a.wrapping_div(*b)
                    }
                    BinOp::Rem => {
                        if *b == 0 {
                            return Err(IrError::DivByZero);
                        }
                        a.wrapping_rem(*b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            _ => {
                let a = l.as_double().ok_or_else(|| type_err("number", l))?;
                let b = r.as_double().ok_or_else(|| type_err("number", r))?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                };
                Ok(Value::Double(v))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpOp;
    use crate::record::record;
    use crate::schema::{FieldType, Schema};

    fn webpage_schema() -> std::sync::Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    /// The paper's §2 example: `if (v.rank > 1) emit(k, 1)`.
    fn select_map() -> Function {
        let mut b = FunctionBuilder::new("map");
        let v = b.load_param(ParamId::Value);
        let rank = b.get_field(v, "rank");
        let one = b.const_int(1);
        let c = b.cmp(CmpOp::Gt, rank, one);
        let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
        b.br(c, t, e);
        b.bind(t);
        let k = b.load_param(ParamId::Key);
        b.emit(k, one);
        b.bind(e);
        b.ret();
        b.finish()
    }

    #[test]
    fn selection_emits_only_above_threshold() {
        let f = select_map();
        let s = webpage_schema();
        let mut interp = Interpreter::new(&f);

        let hi = record(&s, vec!["http://a".into(), 5.into()]);
        let out = interp
            .invoke_map(&f, &Value::str("k1"), &hi.into())
            .unwrap();
        assert_eq!(out.emits, vec![(Value::str("k1"), Value::Int(1))]);

        let lo = record(&s, vec!["http://b".into(), 0.into()]);
        let out = interp
            .invoke_map(&f, &Value::str("k2"), &lo.into())
            .unwrap();
        assert!(out.emits.is_empty());
    }

    /// The paper's Fig. 2: emit decision depends on a member counter.
    #[test]
    fn member_state_persists_across_invocations() {
        let mut b = FunctionBuilder::new("map");
        b.declare_member("numMapsRun", Value::Int(0));
        let n = b.get_member("numMapsRun");
        let one = b.const_int(1);
        let n2 = b.bin(BinOp::Add, n, one);
        b.set_member("numMapsRun", n2);
        let v = b.load_param(ParamId::Value);
        let rank = b.get_field(v, "rank");
        let c1 = b.cmp(CmpOp::Gt, rank, one);
        let limit = b.const_int(2);
        let c2 = b.cmp(CmpOp::Gt, n2, limit);
        let c = b.bin(BinOp::Or, c1, c2);
        let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
        b.br(c, t, e);
        b.bind(t);
        let k = b.load_param(ParamId::Key);
        b.emit(k, one);
        b.bind(e);
        b.ret();
        let f = b.finish();

        let s = webpage_schema();
        let lo = record(&s, vec!["u".into(), 0.into()]);
        let mut interp = Interpreter::new(&f);
        // First two low-rank records do not emit; the third does,
        // because numMapsRun crossed the limit.
        for expected in [0usize, 0, 1] {
            let out = interp
                .invoke_map(&f, &Value::Null, &lo.clone().into())
                .unwrap();
            assert_eq!(out.emits.len(), expected);
        }
        assert_eq!(interp.member("numMapsRun"), Some(&Value::Int(3)));
    }

    #[test]
    fn loop_with_fuel_limit() {
        let mut b = FunctionBuilder::new("spin");
        let head = b.fresh_label("head");
        b.bind(head);
        b.jmp(head);
        let f = b.finish();
        let mut interp = Interpreter::with_config(&f, InterpConfig { fuel: 100 });
        let err = interp
            .invoke_map(&f, &Value::Null, &Value::Null)
            .unwrap_err();
        assert_eq!(err, IrError::FuelExhausted);
    }

    #[test]
    fn unbound_register_detected() {
        use crate::instr::Reg;
        let f = Function {
            name: "bad".into(),
            instrs: vec![
                Instr::Move {
                    dst: Reg(0),
                    src: Reg(1),
                },
                Instr::Ret,
            ],
            members: vec![],
        };
        let mut interp = Interpreter::new(&f);
        assert_eq!(
            interp
                .invoke_map(&f, &Value::Null, &Value::Null)
                .unwrap_err(),
            IrError::UnboundRegister(Reg(1))
        );
    }

    #[test]
    fn side_effects_recorded() {
        let mut b = FunctionBuilder::new("map");
        let msg = b.const_str("processing");
        b.side_effect(SideEffectKind::Log, vec![msg]);
        b.ret();
        let f = b.finish();
        let mut interp = Interpreter::new(&f);
        let out = interp.invoke_map(&f, &Value::Null, &Value::Null).unwrap();
        assert_eq!(out.effects.len(), 1);
        assert_eq!(out.effects[0].0, SideEffectKind::Log);
    }

    #[test]
    fn binop_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap_err(),
            IrError::DivByZero
        );
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Int(1), &Value::Double(0.5)).unwrap(),
            Value::Double(1.5)
        );
        assert_eq!(
            eval_binop(BinOp::Concat, &Value::str("a"), &Value::str("b")).unwrap(),
            Value::str("ab")
        );
    }

    #[test]
    fn loop_over_extracted_urls() {
        // for url in extract_urls(v.content): emit(url, 1)
        let mut b = FunctionBuilder::new("map");
        let v = b.load_param(ParamId::Value);
        let content = b.get_field(v, "content");
        let urls = b.call("text.extract_urls", vec![content]);
        let len = b.call("list.len", vec![urls]);
        let one = b.const_int(1);
        let i = b.const_int(0);
        let (head, body, exit) = (
            b.fresh_label("head"),
            b.fresh_label("body"),
            b.fresh_label("exit"),
        );
        b.bind(head);
        let c = b.cmp(CmpOp::Lt, i, len);
        b.br(c, body, exit);
        b.bind(body);
        let url = b.call("list.get", vec![urls, i]);
        b.emit(url, one);
        let i2 = b.bin(BinOp::Add, i, one);
        b.mov_to(i, i2);
        b.jmp(head);
        b.bind(exit);
        b.ret();
        let f = b.finish();

        let s = Schema::new("Doc", vec![("content", FieldType::Str)]).into_arc();
        let doc = record(&s, vec!["x http://a.com y http://b.com z".into()]);
        let mut interp = Interpreter::new(&f);
        let out = interp.invoke_map(&f, &Value::Null, &doc.into()).unwrap();
        assert_eq!(out.emits.len(), 2);
        assert_eq!(out.emits[0].0, Value::str("http://a.com"));
    }
}
