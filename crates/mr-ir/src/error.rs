//! Errors shared by the interpreter, verifier and stdlib.

use std::fmt;

use crate::instr::Reg;

/// Runtime or verification failure in an MR-IR program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A value had the wrong kind for an operation.
    Type {
        /// Where the error occurred (operator or function name).
        context: String,
        /// What was expected.
        expected: &'static str,
        /// The kind actually seen.
        got: &'static str,
    },
    /// Call to a function not present in the stdlib registry.
    UnknownFunction(String),
    /// Wrong number of call arguments.
    Arity {
        /// Function name.
        func: String,
        /// Declared arity.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// Record field not found.
    NoSuchField(String),
    /// A register was read before any write on this execution path.
    UnboundRegister(Reg),
    /// Read of an undeclared member variable.
    UnknownMember(String),
    /// The interpreter's instruction budget ran out (runaway loop).
    FuelExhausted,
    /// A branch target is outside the instruction stream.
    BadJump(usize),
    /// Integer division or remainder by zero.
    DivByZero,
    /// Execution fell off the end of the instruction stream.
    FellOffEnd,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Type {
                context,
                expected,
                got,
            } => write!(f, "type error in {context}: expected {expected}, got {got}"),
            IrError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            IrError::Arity {
                func,
                expected,
                got,
            } => write!(f, "{func}: expected {expected} args, got {got}"),
            IrError::NoSuchField(name) => write!(f, "no such field: {name}"),
            IrError::UnboundRegister(r) => write!(f, "read of unbound register {r}"),
            IrError::UnknownMember(name) => write!(f, "read of undeclared member: {name}"),
            IrError::FuelExhausted => write!(f, "instruction budget exhausted"),
            IrError::BadJump(t) => write!(f, "jump target {t} out of range"),
            IrError::DivByZero => write!(f, "division by zero"),
            IrError::FellOffEnd => write!(f, "execution fell off the end of the function"),
        }
    }
}

impl std::error::Error for IrError {}
