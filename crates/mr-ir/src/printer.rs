//! Re-parseable assembly output.
//!
//! [`Function::to_asm`](to_asm) renders a compiled function back into
//! the textual form `asm::parse_function` accepts, with synthetic labels
//! at branch targets. Useful for persisting programs, diffing optimizer
//! rewrites (the dict-constant rewriting produces a "modified copy of
//! the user's original program" worth inspecting), and round-trip
//! testing.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::function::Function;
use crate::instr::Instr;

/// Render `func` as parseable assembly.
pub fn to_asm(func: &Function) -> String {
    // Label every branch target.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for instr in &func.instrs {
        match instr {
            Instr::Jmp { target } => {
                targets.insert(*target);
            }
            Instr::Br {
                then_tgt, else_tgt, ..
            } => {
                targets.insert(*then_tgt);
                targets.insert(*else_tgt);
            }
            _ => {}
        }
    }
    let label = |pc: usize| format!("L{pc}");

    let mut out = String::new();
    let _ = writeln!(out, "func {}(key, value) {{", func.name);
    for (name, init) in &func.members {
        let _ = writeln!(out, "  member {name} = {init}");
    }
    for (pc, instr) in func.instrs.iter().enumerate() {
        if targets.contains(&pc) {
            let _ = writeln!(out, "{}:", label(pc));
        }
        match instr {
            Instr::Jmp { target } => {
                let _ = writeln!(out, "  jmp {}", label(*target));
            }
            Instr::Br {
                cond,
                then_tgt,
                else_tgt,
            } => {
                let _ = writeln!(
                    out,
                    "  br {cond}, {}, {}",
                    label(*then_tgt),
                    label(*else_tgt)
                );
            }
            Instr::SetMember { name, src } => {
                let _ = writeln!(out, "  member {name} = {src}");
            }
            other => {
                let _ = writeln!(out, "  {other}");
            }
        }
    }
    // A label can bind one-past-the-end only through a malformed
    // function; verified functions always end in a terminator at a
    // labelled-or-not position < len, so nothing more to emit.
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_function;

    fn roundtrip(src: &str) {
        let f1 = parse_function(src).unwrap();
        let text = to_asm(&f1);
        let f2 = parse_function(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- emitted ---\n{text}"));
        assert_eq!(f1.instrs, f2.instrs, "emitted:\n{text}");
        assert_eq!(f1.members, f2.members);
    }

    #[test]
    fn roundtrip_selection() {
        roundtrip(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = param key
              emit r4, r2
            e:
              ret
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_members_and_effects() {
        roundtrip(
            r#"
            func map(key, value) {
              member count = 0
              r0 = member count
              r1 = const 1
              r2 = add r0, r1
              member count = r2
              effect log(r2)
              ret
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_loops_and_calls() {
        roundtrip(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.content
              r2 = call text.extract_urls(r1)
              r3 = call list.len(r2)
              r4 = const 0
              r5 = const 1
            head:
              r6 = cmp lt r4, r3
              br r6, body, exit
            body:
              r7 = call list.get(r2, r4)
              emit r7, r5
              r8 = add r4, r5
              r4 = r8
              jmp head
            exit:
              ret
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_string_and_double_literals() {
        roundtrip(
            r#"
            func map(key, value) {
              r0 = const "a \"quoted\" string"
              r1 = const 2.5
              r2 = const true
              r3 = const null
              r4 = cmp eq r0, r0
              br r4, t, t
            t:
              emit r1, r2
              ret
            }
            "#,
        );
    }

    #[test]
    fn benchmark_programs_roundtrip() {
        // The builder-made Pavlo-style program shapes must also survive.
        use crate::builder::FunctionBuilder;
        use crate::instr::{CmpOp, ParamId};
        let mut b = FunctionBuilder::new("built");
        let v = b.load_param(ParamId::Value);
        let x = b.get_field(v, "rank");
        let k = b.const_int(10);
        let c = b.cmp(CmpOp::Ge, x, k);
        let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
        b.br(c, t, e);
        b.bind(t);
        b.emit(x, k);
        b.bind(e);
        b.ret();
        let f1 = b.finish();
        let f2 = parse_function(&to_asm(&f1)).unwrap();
        assert_eq!(f1.instrs, f2.instrs);
    }
}
