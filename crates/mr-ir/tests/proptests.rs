//! Property-based tests for MR-IR: printer↔assembler round-trips over
//! randomly generated (verified) functions, glob-matcher laws, and
//! interpreter determinism.

use proptest::prelude::*;

use mr_ir::asm::parse_function;
use mr_ir::builder::FunctionBuilder;
use mr_ir::function::Function;
use mr_ir::instr::{BinOp, CmpOp, ParamId};
use mr_ir::interp::Interpreter;
use mr_ir::printer::to_asm;
use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::stdlib::glob_match;
use mr_ir::value::Value;
use mr_ir::verify::verify;

/// A random straight-line-with-diamonds function over a two-field
/// schema, always verifiable.
#[derive(Debug, Clone)]
struct GenOp {
    /// 0..3: which shape to append.
    kind: u8,
    cmp: u8,
    constant: i64,
}

fn ops_strategy() -> impl Strategy<Value = Vec<GenOp>> {
    proptest::collection::vec(
        (0u8..4, 0u8..6, -50i64..50).prop_map(|(kind, cmp, constant)| GenOp {
            kind,
            cmp,
            constant,
        }),
        1..8,
    )
}

fn cmp_of(i: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][i as usize % 6]
}

fn build(ops: &[GenOp]) -> Function {
    let mut b = FunctionBuilder::new("gen");
    let v = b.load_param(ParamId::Value);
    let a = b.get_field(v, "a");
    let s = b.get_field(v, "s");
    let mut acc = a;
    for op in ops {
        match op.kind {
            0 => {
                let k = b.const_int(op.constant);
                acc = b.bin(BinOp::Add, acc, k);
            }
            1 => {
                let k = b.const_int(op.constant);
                let c = b.cmp(cmp_of(op.cmp), acc, k);
                let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
                b.br(c, t, e);
                b.bind(t);
                b.emit(acc, k);
                b.bind(e);
            }
            2 => {
                let pat = b.const_str("http*");
                let c = b.call("pattern.matches", vec![pat, s]);
                let (t, e) = (b.fresh_label("t"), b.fresh_label("e"));
                b.br(c, t, e);
                b.bind(t);
                b.emit(s, acc);
                b.bind(e);
            }
            _ => {
                let k = b.const_int(op.constant.max(1));
                acc = b.bin(BinOp::Mul, acc, k);
            }
        }
    }
    b.emit(acc, acc);
    b.ret();
    b.finish()
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new("T", vec![("a", FieldType::Long), ("s", FieldType::Str)]).into_arc()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated functions verify, and printer output re-parses to the
    /// identical instruction stream.
    #[test]
    fn printer_assembler_roundtrip(ops in ops_strategy()) {
        let f1 = build(&ops);
        prop_assert!(verify(&f1).is_ok(), "generated function must verify");
        let text = to_asm(&f1);
        let f2 = parse_function(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse: {e}\n{text}")))?;
        prop_assert_eq!(&f1.instrs, &f2.instrs, "asm:\n{}", text);
    }

    /// Interpreting the original and the round-tripped function yields
    /// identical emits for any record.
    #[test]
    fn roundtrip_preserves_semantics(
        ops in ops_strategy(),
        a in -100i64..100,
        s in "[ht]{0,4}",
    ) {
        let f1 = build(&ops);
        let f2 = parse_function(&to_asm(&f1)).expect("reparse");
        let rec: Value = record(&schema(), vec![Value::Int(a), s.as_str().into()]).into();
        let out1 = Interpreter::new(&f1)
            .invoke_map(&f1, &Value::Int(0), &rec)
            .expect("run f1");
        let out2 = Interpreter::new(&f2)
            .invoke_map(&f2, &Value::Int(0), &rec)
            .expect("run f2");
        prop_assert_eq!(out1.emits, out2.emits);
    }

    /// The interpreter is deterministic: same inputs, same outputs,
    /// including across fresh interpreter instances.
    #[test]
    fn interpreter_deterministic(ops in ops_strategy(), a in -100i64..100) {
        let f = build(&ops);
        let rec: Value = record(&schema(), vec![Value::Int(a), "x".into()]).into();
        let out1 = Interpreter::new(&f)
            .invoke_map(&f, &Value::Int(0), &rec)
            .expect("run");
        let out2 = Interpreter::new(&f)
            .invoke_map(&f, &Value::Int(0), &rec)
            .expect("run");
        prop_assert_eq!(out1.emits, out2.emits);
        prop_assert_eq!(out1.instructions_executed, out2.instructions_executed);
    }
}

proptest! {
    /// Glob laws: a pattern with no wildcards matches only itself;
    /// `*` matches everything; a concrete prefix pattern agrees with
    /// `str::starts_with`.
    #[test]
    fn glob_laws(text in "[a-c]{0,8}", other in "[a-c]{0,8}", prefix in "[a-c]{0,4}") {
        prop_assert!(glob_match(&text, &text));
        prop_assert_eq!(glob_match(&text, &other), text == other);
        prop_assert!(glob_match("*", &text));
        let pat = format!("{prefix}*");
        prop_assert_eq!(glob_match(&pat, &text), text.starts_with(&prefix));
        let pat = format!("*{prefix}");
        prop_assert_eq!(glob_match(&pat, &text), text.ends_with(&prefix));
    }

    /// Value total order is transitive-consistent with sorting and the
    /// hash agrees with equality for mixed numerics.
    #[test]
    fn value_order_and_hash(mut xs in proptest::collection::vec(-50i64..50, 1..20)) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut values: Vec<Value> = xs.iter().map(|&i| {
            if i % 3 == 0 { Value::Double(i as f64) } else { Value::Int(i) }
        }).collect();
        values.sort();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1]);
            if w[0] == w[1] {
                let h = |v: &Value| {
                    let mut s = DefaultHasher::new();
                    v.hash(&mut s);
                    s.finish()
                };
                prop_assert_eq!(h(&w[0]), h(&w[1]), "equal values must hash equal");
            }
        }
        xs.sort_unstable();
        let ints: Vec<i64> = values.iter().map(|v| v.as_int().or_else(|| v.as_double().map(|d| d as i64)).unwrap()).collect();
        prop_assert_eq!(ints, xs);
    }
}
