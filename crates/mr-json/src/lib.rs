//! A tiny, dependency-free JSON library for catalog persistence.
//!
//! The catalog (see `manimal::catalog`) is a durable JSON file. The
//! container this workspace builds in has no route to a crates
//! registry, so instead of `serde`/`serde_json` the catalog round-trips
//! through this hand-rolled value model. The printer mimics
//! `serde_json::to_string_pretty` (two-space indent) and the object
//! encoding mimics serde's externally-tagged enum representation, so
//! catalog files stay readable and forward-compatible with a future
//! move to real serde.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part, kept exact.
    Int(i64),
    /// A fractional or out-of-`i64` number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved from insertion/parse order.
    Obj(Vec<(String, Json)>),
}

/// A parse or structure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input, when parsing.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The unsigned payload, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Look up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Serialize compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Serialize with two-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }

    /// The members as a map (convenience for tests/tools).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        Some(
            self.as_obj()?
                .iter()
                .map(|(k, v)| (k.as_str(), v))
                .collect(),
        )
    }
}

fn write_value(v: &Json, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // Keep a fractional marker so the value re-parses as a
                // float even when it happens to be integral.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(items.iter(), indent, level, out, '[', ']', |item, out| {
            write_value(item, indent, level + 1, out)
        }),
        Json::Obj(members) => write_seq(
            members.iter(),
            indent,
            level,
            out,
            '{',
            '}',
            |(k, v), out| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, level + 1, out);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(T, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts, matching serde_json's
/// default recursion limit; beyond it `parse` returns an error instead
/// of overflowing the stack on hostile input.
const MAX_DEPTH: usize = 128;

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = Json::obj([
            ("name", Json::str("catalog")),
            ("count", Json::Int(3)),
            ("ratio", Json::Float(0.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(1), Json::str("two"), Json::Arr(vec![])]),
            ),
        ]);
        for text in [v.to_string_pretty(), v.to_string_compact()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\"b\\c\ndé😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndé😀");
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Integral floats keep a fractional marker when printed.
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let mut text = open.repeat(100_000);
            text.push('1');
            text.push_str(&close.repeat(100_000));
            let err = parse(&text).unwrap_err();
            assert!(err.message.contains("nesting too deep"), "{err}");
        }
        // Under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integral_int_survives_exactly() {
        let big = i64::MAX - 1;
        let text = Json::Int(big).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_i64().unwrap(), big);
    }

    #[test]
    fn pretty_format_matches_serde_style() {
        let v = Json::obj([("a", Json::Int(1)), ("b", Json::Arr(vec![Json::Int(2)]))]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }
}
