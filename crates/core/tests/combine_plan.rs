//! The optimizer's combiner decision, end to end: plans engage the
//! combiner a reducer declares (or the `mr_analysis::combine` pass
//! proves), the output stays byte-identical to the combiner-free
//! baseline, and `--no-combine` / non-algebraic reducers fall back to
//! the plain pipeline.

use std::path::PathBuf;
use std::sync::Arc;

use manimal::{combiner_for, find_combine, Builtin, CombineOutcome, Manimal};
use mr_ir::asm::parse_function;
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo::benchmark2;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("manimal-combine-plan")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn visits(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("uservisits.seq");
    generate_uservisits(
        &path,
        &UserVisitsConfig {
            visits: 3000,
            pages: 300,
            // 20 distinct sourceIPs: the low-cardinality group-by
            // regime combiners pay off in.
            source_ips: 20,
            ..UserVisitsConfig::default()
        },
    )
    .unwrap();
    path
}

/// The Pavlo aggregation under a spilling shuffle: the planned run
/// engages Sum's declared combiner, folds pairs, and still matches the
/// combiner-free baseline exactly.
#[test]
fn planned_execution_engages_declared_combiner() {
    let dir = tmpdir("engage");
    let input = visits(&dir);
    let manimal = Manimal::new(dir.join("work"))
        .unwrap()
        .with_shuffle_buffer(4096);
    let submission = manimal.submit(&benchmark2(), &input);

    let combined = manimal
        .execute(&submission, Arc::new(Builtin::Sum))
        .unwrap();
    assert_eq!(combined.combiner, Some("sum"));
    assert!(
        combined.result.counters.combine_in > combined.result.counters.combine_out,
        "combine {} -> {}",
        combined.result.counters.combine_in,
        combined.result.counters.combine_out
    );

    // The baseline never combines; outputs must agree byte for byte.
    let baseline = manimal
        .execute_baseline(&submission, Arc::new(Builtin::Sum))
        .unwrap();
    assert_eq!(baseline.combiner, None);
    assert_eq!(baseline.result.counters.combine_in, 0);
    assert_eq!(baseline.result.output, combined.result.output);
    // And the combiner kept spill traffic below the baseline's.
    assert!(combined.result.counters.spilled_records <= baseline.result.counters.spilled_records);
}

/// The `--no-combine` escape hatch turns the decision off at plan time.
#[test]
fn no_combine_escape_hatch_disables_combining() {
    let dir = tmpdir("escape");
    let input = visits(&dir);
    let mut manimal = Manimal::new(dir.join("work"))
        .unwrap()
        .with_shuffle_buffer(4096);
    manimal.optimizer.no_combine = true;

    let submission = manimal.submit(&benchmark2(), &input);
    let plan = manimal.plan(&submission).unwrap();
    assert!(!plan.combine, "no_combine must veto the plan decision");

    let run = manimal
        .execute(&submission, Arc::new(Builtin::Sum))
        .unwrap();
    assert_eq!(run.combiner, None);
    assert_eq!(run.result.counters.combine_in, 0);
}

/// Non-algebraic reducers fall back cleanly: the plan allows combining
/// but nothing is declared, so the pipeline stays plain.
#[test]
fn non_algebraic_reducer_falls_back() {
    let dir = tmpdir("fallback");
    let input = visits(&dir);
    let manimal = Manimal::new(dir.join("work")).unwrap();
    let submission = manimal.submit(&benchmark2(), &input);
    let plan = manimal.plan(&submission).unwrap();
    assert!(plan.combine, "combining is allowed by default");
    let run = manimal
        .execute(&submission, Arc::new(Builtin::Identity))
        .unwrap();
    assert_eq!(run.combiner, None);
    assert_eq!(run.result.counters.combine_in, 0);
}

/// A user-submitted IR reduce program flows through the analysis pass
/// into an engine combiner and through `Manimal` execution: the proven
/// Sum-shape engages `Builtin::Sum`'s combiner and produces the exact
/// output of the builtin Sum reducer; rejected shapes engage nothing.
#[test]
fn proven_ir_reducer_maps_to_engine_combiner() {
    let sum_reduce = parse_function(
        r#"
        func reduce(key, values) {
          r0 = param value
          r1 = call list.len(r0)
          r2 = const 0
          r3 = const 0
          r4 = const 1
        head:
          r5 = cmp lt r3, r1
          br r5, body, done
        body:
          r6 = call list.get(r0, r3)
          r7 = add r2, r6
          r2 = r7
          r8 = add r3, r4
          r3 = r8
          jmp head
        done:
          r9 = param key
          emit r9, r2
          ret
        }
        "#,
    )
    .unwrap();
    let CombineOutcome::Combinable(descriptor) = find_combine(&sum_reduce) else {
        panic!("canonical sum fold must be proven combinable");
    };
    let combiner = combiner_for(&descriptor).expect("sum maps to a builtin combiner");
    assert_eq!(combiner.name(), "sum");

    // The production path: `ir_reducer` packages the proof into a
    // factory that Manimal execution engages like any declared combiner
    // — and the interpreted reduce matches the builtin Sum exactly.
    let dir = tmpdir("ir-reduce");
    let input = visits(&dir);
    let manimal = Manimal::new(dir.join("work"))
        .unwrap()
        .with_shuffle_buffer(4096);
    // benchmark2's map emits the Int-typed adRevenue field, so the Sum
    // fold's value-domain gate passes.
    let program = benchmark2();
    let submission = manimal.submit(&program, &input);
    let (factory, outcome) = manimal::ir_reducer(sum_reduce, &program);
    assert!(matches!(outcome, CombineOutcome::Combinable(_)));
    let ir_run = manimal.execute(&submission, factory).unwrap();
    assert_eq!(ir_run.combiner, Some("sum"));
    assert!(ir_run.result.counters.combine_in > ir_run.result.counters.combine_out);
    let builtin_run = manimal
        .execute_baseline(&submission, Arc::new(Builtin::Sum))
        .unwrap();
    assert_eq!(ir_run.result.output, builtin_run.result.output);

    // `First` in IR: emit the 0th element — analysis rejects it, so
    // `ir_reducer` declares no combiner and the pipeline stays plain.
    let first_reduce = parse_function(
        r#"
        func reduce(key, values) {
          r0 = param value
          r1 = const 0
          r2 = call list.get(r0, r1)
          r3 = param key
          emit r3, r2
          ret
        }
        "#,
    )
    .unwrap();
    let (first_factory, first_outcome) = manimal::ir_reducer(first_reduce.clone(), &program);
    assert!(matches!(first_outcome, CombineOutcome::NotCombinable(_)));
    assert!(matches!(
        find_combine(&first_reduce),
        CombineOutcome::NotCombinable(_)
    ));
    let first_run = manimal.execute(&submission, first_factory).unwrap();
    assert_eq!(first_run.combiner, None);
    assert_eq!(first_run.result.counters.combine_in, 0);
}

/// A proven Sum fold over a map whose emitted values are *not* proven
/// integer-only must not combine: IR `add` promotes `Int + Double`, so
/// a mixed-domain sequential fold is not associative and the combined
/// result could differ beyond float reassociation.
#[test]
fn sum_fold_over_unproven_value_domain_declines() {
    use manimal::CombineOutcome;
    use mr_ir::builder::FunctionBuilder;
    use mr_ir::instr::ParamId;
    use mr_ir::schema::{FieldType, Schema};
    use mr_ir::Program;

    let schema = Schema::new(
        "Reading",
        vec![("sensor", FieldType::Str), ("temp", FieldType::Double)],
    )
    .into_arc();
    let mut b = FunctionBuilder::new("double_map");
    let v = b.load_param(ParamId::Value);
    let sensor = b.get_field(v, "sensor");
    let temp = b.get_field(v, "temp");
    b.emit(sensor, temp);
    b.ret();
    let program = Program::new("double-emit", b.finish(), schema);

    let sum_reduce = parse_function(
        r#"
        func reduce(key, values) {
          r0 = param value
          r1 = call list.len(r0)
          r2 = const 0
          r3 = const 0
          r4 = const 1
        head:
          r5 = cmp lt r3, r1
          br r5, body, done
        body:
          r6 = call list.get(r0, r3)
          r7 = add r2, r6
          r2 = r7
          r8 = add r3, r4
          r3 = r8
          jmp head
        done:
          r9 = param key
          emit r9, r2
          ret
        }
        "#,
    )
    .unwrap();
    let (factory, outcome) = manimal::ir_reducer(sum_reduce, &program);
    assert!(
        matches!(&outcome, CombineOutcome::NotCombinable(_)),
        "{outcome}"
    );
    assert!(
        outcome.to_string().contains("value domain"),
        "witness names the domain gate: {outcome}"
    );
    assert!(factory.combiner().is_none(), "no combiner may engage");
}
