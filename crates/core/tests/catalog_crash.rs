//! Crash-injection: SIGKILL a process mid-catalog-save and prove the
//! on-disk `catalog.json` is always loadable — old state or new state,
//! never a torn file.
//!
//! The victim is this same test binary re-spawned onto the `#[ignore]`d
//! [`crash_child_writer`] test, which registers catalog entries in a
//! tight loop until killed. Because `Catalog` commits by
//! write-tmp-then-rename under an advisory file lock, the kill can land
//! anywhere — inside the tmp write, between write and rename, inside
//! the lock — and the visible catalog still parses.

use std::path::{Path, PathBuf};

use manimal::{Catalog, CatalogEntry, IndexKind};

const DIR_ENV: &str = "MANIMAL_CRASH_CATALOG_DIR";

fn entry(i: usize) -> CatalogEntry {
    CatalogEntry {
        input_path: PathBuf::from(format!("/data/input-{i}.seq")),
        index_path: PathBuf::from(format!("/data/input-{i}.proj")),
        kind: IndexKind::Projection {
            fields: vec!["url".into(), "rank".into()],
        },
        index_bytes: 1000 + i as u64,
        input_bytes: 10_000,
    }
}

/// The victim: registers entries as fast as possible until SIGKILLed.
/// Ignored in normal runs; the parent test opts it back in.
#[test]
#[ignore]
fn crash_child_writer() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return; // invoked by a plain `--include-ignored` run: no-op
    };
    let catalog = Catalog::open(Path::new(&dir).join("catalog.json")).unwrap();
    for i in 0.. {
        catalog.register(entry(i)).unwrap();
    }
}

#[test]
fn sigkill_during_save_never_tears_the_catalog() {
    let dir = std::env::temp_dir()
        .join("manimal-crash-test")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();

    let mut entries_seen = 0usize;
    for round in 0..6u64 {
        let mut child = std::process::Command::new(&exe)
            .args(["crash_child_writer", "--exact", "--include-ignored"])
            .env(DIR_ENV, &dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        // Vary the kill point so different rounds land in different
        // phases of the save (lock, tmp write, rename).
        std::thread::sleep(std::time::Duration::from_millis(40 + 17 * round));
        child.kill().unwrap(); // SIGKILL: no destructors, no unwinding
        child.wait().unwrap();

        // The surviving catalog must parse — every time.
        let catalog = Catalog::open(dir.join("catalog.json"))
            .unwrap_or_else(|e| panic!("round {round}: catalog torn by kill: {e}"));
        entries_seen = entries_seen.max(catalog.entries().len());
        // And no backup file: `open` only writes one for corrupt input.
        assert!(
            !dir.join("catalog.json.corrupt").exists(),
            "round {round}: open() treated the catalog as corrupt"
        );
    }
    assert!(
        entries_seen > 0,
        "victims never registered anything; the drill exercised nothing"
    );

    // The kernel dropped the dead writers' flocks: a live process can
    // mutate the catalog immediately.
    let catalog = Catalog::open(dir.join("catalog.json")).unwrap();
    catalog.register(entry(999_999)).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
