//! The optimizer's hard-coded plan ranking (paper §2.2 Step 2),
//! exercised against a catalog holding every artifact at once.

use std::path::PathBuf;
use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_engine::InputSpec;
use mr_workloads::data::{
    generate_uservisits, generate_webpages, UserVisitsConfig, WebPagesConfig,
};
use mr_workloads::queries::{
    duration_sum_query, projection_query, selection_query, threshold_for_selectivity,
};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("manimal-ranking")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn selection_outranks_projection_and_delta() {
    let dir = tmpdir("sel-first");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 2000,
            content_size: 100,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();

    let manimal = Manimal::new(dir.join("work")).unwrap();
    // Build the combined selection index via the normal path…
    let program = projection_query(threshold_for_selectivity(10));
    let submission = manimal.submit(&program, &input);
    manimal.build_indexes(&submission).unwrap();
    // …and also a standalone projection artifact for the same input.
    let proj = manimal::IndexGenProgram {
        kind: manimal::IndexKind::Projection {
            fields: vec!["url".into(), "rank".into()],
        },
        input: input.clone(),
        output: dir.join("webpages.proj.idx"),
        key_expr: None,
        view_ranges: vec![],
    };
    manimal.build_index(&proj).unwrap();

    // With both available, selection must win.
    let plan = manimal.plan(&submission).unwrap();
    assert!(
        matches!(plan.input, InputSpec::BTreeRanges { .. }),
        "selection index should outrank projection: {:?}",
        plan.applied
    );
}

#[test]
fn selection_over_delta_conflict_resolves_to_selection() {
    // Paper §2.2 footnote 3: "we currently favor selection over
    // delta-compression." A selection query over WebPages (numeric rank
    // ⇒ delta also applies): the recommended artifact set must contain
    // a selection index and no plain delta artifact.
    let dir = tmpdir("conflict");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 1000,
            content_size: 64,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();
    let manimal = Manimal::new(dir.join("work")).unwrap();
    let submission = manimal.submit(&selection_query(50), &input);
    assert!(submission
        .index_programs
        .iter()
        .any(|p| matches!(p.kind, manimal::IndexKind::Selection { .. })));
    assert!(
        !submission
            .index_programs
            .iter()
            .any(|p| matches!(p.kind, manimal::IndexKind::Delta { .. })),
        "delta loses the conflict with selection"
    );
}

#[test]
fn projection_delta_outranks_dict() {
    let dir = tmpdir("proj-over-dict");
    let input = dir.join("uservisits.seq");
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits: 2000,
            pages: 200,
            ..UserVisitsConfig::default()
        },
    )
    .unwrap();
    let manimal = Manimal::new(dir.join("work")).unwrap();
    let submission = manimal.submit(&duration_sum_query(), &input);
    // Both artifacts recommended…
    manimal.build_indexes(&submission).unwrap();
    // …projection+delta wins the ranking.
    let plan = manimal.plan(&submission).unwrap();
    assert!(
        matches!(plan.input, InputSpec::Delta { .. }),
        "expected the projected-delta plan, got {:?}",
        plan.applied
    );
}

#[test]
fn stale_narrow_index_not_reused_for_wider_predicate() {
    let dir = tmpdir("coverage");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 2000,
            content_size: 64,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();
    let manimal = Manimal::new(dir.join("work")).unwrap();

    // Build an index for the narrow predicate rank > 89.
    let narrow = manimal.submit(&selection_query(89), &input);
    manimal.build_indexes(&narrow).unwrap();

    // A wider predicate (rank > 10) must NOT use it…
    let wide = manimal.submit(&selection_query(10), &input);
    let plan = manimal.plan(&wide).unwrap();
    assert!(
        !matches!(plan.input, InputSpec::BTreeRanges { .. }),
        "view covering (89, +inf) cannot serve (10, +inf): {:?}",
        plan.applied
    );

    // …while an even narrower one can.
    let narrower = manimal.submit(&selection_query(95), &input);
    let plan = manimal.plan(&narrower).unwrap();
    assert!(
        matches!(plan.input, InputSpec::BTreeRanges { .. }),
        "(95, +inf) ⊆ (89, +inf) should reuse the view: {:?}",
        plan.applied
    );
    // And produce correct results.
    let baseline = manimal
        .execute_baseline(&narrower, Arc::new(Builtin::Count))
        .unwrap();
    let optimized = manimal
        .execute(&narrower, Arc::new(Builtin::Count))
        .unwrap();
    assert_eq!(optimized.result.output, baseline.result.output);
}

#[test]
fn wide_predicate_still_correct_via_full_scan() {
    let dir = tmpdir("fallback");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 1500,
            content_size: 64,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();
    let manimal = Manimal::new(dir.join("work")).unwrap();
    let narrow = manimal.submit(&selection_query(90), &input);
    manimal.build_indexes(&narrow).unwrap();

    let wide = manimal.submit(&selection_query(5), &input);
    let baseline = manimal
        .execute_baseline(&wide, Arc::new(Builtin::Count))
        .unwrap();
    let optimized = manimal.execute(&wide, Arc::new(Builtin::Count)).unwrap();
    assert_eq!(optimized.result.output, baseline.result.output);
}

#[test]
fn deleted_artifact_falls_back_to_full_scan() {
    let dir = tmpdir("deleted");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 500,
            content_size: 64,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();
    let manimal = Manimal::new(dir.join("work")).unwrap();
    let submission = manimal.submit(&selection_query(50), &input);
    let entries = manimal.build_indexes(&submission).unwrap();
    // Sabotage: remove the artifact but leave the catalog entry.
    std::fs::remove_file(&entries[0].index_path).unwrap();
    let plan = manimal.plan(&submission).unwrap();
    assert!(
        plan.applied.is_empty(),
        "must fall back: {:?}",
        plan.applied
    );
    // And the job still runs correctly.
    let run = manimal
        .execute(&submission, Arc::new(Builtin::Count))
        .unwrap();
    assert!(!run.result.output.is_empty());
}
