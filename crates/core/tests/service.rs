//! Integration tests for the `manimald` job service: admission
//! boundaries, in-flight index-build dedup, result-cache reuse and
//! invalidation, and clean shutdown — all driven through real Unix
//! sockets with the real client.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use manimal::service::proto::JobRequest;
use manimal::service::{start, ServiceClient, ServiceConfig, SubmitOutcome};
use manimal::{Builtin, Manimal};
use mr_ir::printer::to_asm;
use mr_workloads::data::{generate_webpages, WebPagesConfig};
use mr_workloads::queries::{selection_query, threshold_for_selectivity};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("manimal-service-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn webpages(dir: &Path, name: &str, pages: usize) -> PathBuf {
    let path = dir.join(name);
    generate_webpages(
        &path,
        &WebPagesConfig {
            pages,
            content_size: 200,
            ..WebPagesConfig::default()
        },
    )
    .unwrap();
    path
}

/// The standard request the tests submit: the paper's selection query
/// with a count reducer.
fn selection_request(input: &Path, build_indexes: bool) -> JobRequest {
    let program = selection_query(threshold_for_selectivity(10));
    JobRequest {
        name: "service-test".into(),
        program_asm: to_asm(&program.mapper),
        input: input.to_path_buf(),
        reducer: "count".into(),
        reduce_ir: None,
        build_indexes,
        baseline: false,
    }
}

fn cfg(dir: &Path, name: &str) -> ServiceConfig {
    ServiceConfig::new(dir.join(format!("{name}.sock")), dir.join("daemon-work"))
}

#[test]
fn busy_daemon_with_a_full_queue_rejects_typed() {
    let dir = tmpdir("admission");
    let input = webpages(&dir, "webpages.seq", 12_000);
    let mut c = cfg(&dir, "admission");
    c.max_running = 1;
    c.queue_cap = 0;
    let handle = start(c.clone()).unwrap();

    // Client A occupies the only slot with a real job (index build
    // included, so it holds the slot for a while).
    let socket = c.socket.clone();
    let req = selection_request(&input, true);
    let slow = {
        let (socket, req) = (socket.clone(), req.clone());
        std::thread::spawn(move || {
            ServiceClient::connect(&socket)
                .unwrap()
                .submit(&req)
                .unwrap()
        })
    };
    // Wait until A holds the slot (admitted but not completed)…
    let mut stats_client = ServiceClient::connect(&socket).unwrap();
    loop {
        let s = stats_client.stats().unwrap();
        if s.admitted >= 1 && s.completed == 0 {
            break;
        }
        assert_eq!(s.completed, 0, "job finished before the drill started");
        std::thread::yield_now();
    }
    // …then client B must bounce with a typed rejection carrying live
    // occupancy, not an error string.
    let outcome = ServiceClient::connect(&socket)
        .unwrap()
        .submit(&selection_request(&input, false))
        .unwrap();
    match outcome {
        SubmitOutcome::Rejected(r) => {
            assert_eq!(r.queue_cap, 0);
            assert_eq!(r.running, 1);
        }
        SubmitOutcome::Completed(_) => panic!("full queue must reject"),
    }
    match slow.join().unwrap() {
        SubmitOutcome::Completed(reply) => assert!(!reply.output_hex.is_empty()),
        SubmitOutcome::Rejected(r) => panic!("idle daemon rejected the first job: {r}"),
    }
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn concurrent_identical_submissions_share_one_index_build() {
    let dir = tmpdir("dedup");
    let c = cfg(&dir, "dedup");
    let handle = start(c.clone()).unwrap();

    // The overlap is probabilistic (the loser must arrive while the
    // winner's build is in flight), so retry on fresh inputs until the
    // dedup counter moves; each attempt is correct either way.
    let mut deduped = 0;
    let mut replies = Vec::new();
    for attempt in 0..3 {
        let input = webpages(&dir, &format!("webpages-{attempt}.seq"), 3_000);
        let req = selection_request(&input, true);
        let before = ServiceClient::connect(&c.socket).unwrap().stats().unwrap();
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let (socket, req) = (c.socket.clone(), req.clone());
                std::thread::spawn(move || {
                    ServiceClient::connect(&socket)
                        .unwrap()
                        .submit(&req)
                        .unwrap()
                })
            })
            .collect();
        replies = clients
            .into_iter()
            .map(|t| match t.join().unwrap() {
                SubmitOutcome::Completed(reply) => reply,
                SubmitOutcome::Rejected(r) => panic!("default queue rejected: {r}"),
            })
            .collect();
        let after = ServiceClient::connect(&c.socket).unwrap().stats().unwrap();
        // Never two builds for one descriptor, overlap or not.
        assert!(
            after.index_builds - before.index_builds <= 1,
            "duplicate build: {} -> {}",
            before.index_builds,
            after.index_builds
        );
        deduped = after.index_builds_deduped - before.index_builds_deduped;
        if deduped > 0 {
            break;
        }
    }
    assert!(deduped >= 1, "no attempt overlapped an in-flight build");

    // Both clients got the full result, identical to a cold local run.
    let input = replies[0].clone();
    assert_eq!(input.output_hex, replies[1].output_hex);
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.failed, 0);
}

#[test]
fn cache_serves_repeats_and_invalidation_drops_regenerated_inputs() {
    let dir = tmpdir("cache");
    let input = webpages(&dir, "webpages.seq", 2_000);
    let c = cfg(&dir, "cache");
    let handle = start(c.clone()).unwrap();
    let mut client = ServiceClient::connect(&c.socket).unwrap();
    let req = selection_request(&input, false);

    let cold = match client.submit(&req).unwrap() {
        SubmitOutcome::Completed(r) => r,
        SubmitOutcome::Rejected(r) => panic!("{r}"),
    };
    assert!(!cold.cache_hit);
    let warm = match client.submit(&req).unwrap() {
        SubmitOutcome::Completed(r) => r,
        SubmitOutcome::Rejected(r) => panic!("{r}"),
    };
    assert!(warm.cache_hit, "identical resubmission must hit the cache");
    assert_eq!(warm.output_hex, cold.output_hex);
    assert_eq!(client.stats().unwrap().cache_hits, 1);

    // The warm result matches a cold local run byte for byte.
    let local = Manimal::new(dir.join("local-work")).unwrap();
    let program = selection_query(threshold_for_selectivity(10));
    let submission = local.submit(&program, &input);
    let exec = local
        .execute_baseline(&submission, Arc::new(Builtin::Count))
        .unwrap();
    assert_eq!(warm.decode_output().unwrap(), exec.result.output);

    // Regenerate the input (different size → different answer) and
    // tell the daemon: the stale cached result must not survive.
    webpages(&dir, "webpages.seq", 4_000);
    let dropped = client.invalidate(&input).unwrap();
    assert_eq!(dropped, 1, "exactly the one cached result is dropped");
    let fresh = match client.submit(&req).unwrap() {
        SubmitOutcome::Completed(r) => r,
        SubmitOutcome::Rejected(r) => panic!("{r}"),
    };
    assert!(!fresh.cache_hit, "invalidation must force a re-run");
    assert_ne!(
        fresh.output_hex, cold.output_hex,
        "the re-run must see the regenerated data"
    );
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.cache_misses, 2);
}

#[test]
fn client_shutdown_drains_cleanly_with_no_orphaned_jobs() {
    let dir = tmpdir("shutdown");
    let input = webpages(&dir, "webpages.seq", 2_000);
    let c = cfg(&dir, "shutdown");
    let handle = start(c.clone()).unwrap();

    let req = selection_request(&input, false);
    match ServiceClient::connect(&c.socket)
        .unwrap()
        .submit(&req)
        .unwrap()
    {
        SubmitOutcome::Completed(_) => {}
        SubmitOutcome::Rejected(r) => panic!("{r}"),
    }
    ServiceClient::connect(&c.socket)
        .unwrap()
        .shutdown()
        .unwrap();
    assert!(handle.stop_requested());
    let stats = handle.shutdown().unwrap();
    // Every admitted job ran to an outcome: nothing orphaned.
    assert_eq!(stats.admitted, stats.completed + stats.failed);
    assert_eq!(stats.completed, 1);
    assert!(!c.socket.exists(), "socket file removed on shutdown");
    // The daemon is gone: a new connection has nobody to talk to.
    assert!(ServiceClient::connect(&c.socket).is_err());
}
