//! Whole-pipeline property test: for random data and random predicates,
//! every plan the optimizer can produce yields output identical to the
//! unoptimized baseline — the paper's end-to-end safety contract.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use manimal::{Builtin, Manimal};
use mr_ir::builder::FunctionBuilder;
use mr_ir::instr::{CmpOp, ParamId};
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_ir::Program;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("manimal-plan-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new(
        "T",
        vec![
            ("key", FieldType::Str),
            ("score", FieldType::Int),
            ("payload", FieldType::Str),
        ],
    )
    .into_arc()
}

/// `if score <op> c1 && score <op2> c2 { emit(key, score) }` — a
/// two-sided predicate with random operators, never touching payload.
fn program(op1: CmpOp, c1: i64, op2: CmpOp, c2: i64) -> Program {
    let mut b = FunctionBuilder::new("gen_map");
    let v = b.load_param(ParamId::Value);
    let score = b.get_field(v, "score");
    let k1 = b.const_int(c1);
    let t1 = b.cmp(op1, score, k1);
    let (next, exit) = (b.fresh_label("next"), b.fresh_label("exit"));
    b.br(t1, next, exit);
    b.bind(next);
    let k2 = b.const_int(c2);
    let t2 = b.cmp(op2, score, k2);
    let (hit, exit2) = (b.fresh_label("hit"), b.fresh_label("exit2"));
    b.br(t2, hit, exit2);
    b.bind(hit);
    let key = b.get_field(v, "key");
    b.emit(key, score);
    b.bind(exit2);
    b.ret();
    b.bind(exit);
    b.ret();
    Program::new("gen", b.finish(), schema())
}

fn cmp_of(i: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][i as usize % 6]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn optimized_plan_equals_baseline(
        rows in proptest::collection::vec(("[a-d]", -30i64..30), 1..150),
        op1 in 0u8..6,
        c1 in -30i64..30,
        op2 in 0u8..6,
        c2 in -30i64..30,
    ) {
        let s = schema();
        let records: Vec<Record> = rows
            .iter()
            .map(|(k, v)| {
                record(
                    &s,
                    vec![k.as_str().into(), Value::Int(*v), "unused-payload".into()],
                )
            })
            .collect();
        let input = tmp("data");
        write_seqfile(&input, Arc::clone(&s), records).unwrap();

        let workdir = tmp("work");
        let manimal = Manimal::new(&workdir).unwrap();
        let prog = program(cmp_of(op1), c1, cmp_of(op2), c2);
        let submission = manimal.submit(&prog, &input);

        let baseline = manimal
            .execute_baseline(&submission, Arc::new(Builtin::Sum))
            .unwrap();
        manimal.build_indexes(&submission).unwrap();
        let optimized = manimal
            .execute(&submission, Arc::new(Builtin::Sum))
            .unwrap();

        prop_assert_eq!(
            &optimized.result.output,
            &baseline.result.output,
            "plan [{}] diverged for predicate (score {:?} {} && score {:?} {})",
            optimized.applied.join(" + "),
            cmp_of(op1), c1, cmp_of(op2), c2
        );
        // The optimized plan never does MORE work than the baseline.
        prop_assert!(
            optimized.result.counters.map_invocations
                <= baseline.result.counters.map_invocations
        );
        std::fs::remove_file(&input).ok();
        std::fs::remove_dir_all(&workdir).ok();
    }
}
