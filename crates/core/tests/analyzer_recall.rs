//! Analyzer recall on the Pavlo benchmarks — Table 1 as assertions.
//!
//! Paper Table 1:
//!
//! | Benchmark | Select     | Project    | Delta      |
//! |-----------|------------|------------|------------|
//! | 1         | Detected   | Undetected | Undetected |
//! | 2         | NotPresent | Detected   | Detected   |
//! | 3         | Detected   | NotPresent | Detected   |
//! | 4         | Undetected | NotPresent | NotPresent |
//!
//! "The analyzer emits no false positives."

use manimal::analyze;
use mr_analysis::purity::NonFunctional;
use mr_analysis::{DeltaOutcome, ProjectOutcome, SelectMiss, SelectOutcome};
use mr_workloads::pavlo;

#[test]
fn benchmark1_selection_detected_despite_opaque_tuple() {
    let report = analyze(&pavlo::benchmark1(9998));
    let desc = report
        .selection
        .descriptor()
        .expect("selection must be detected through pure accessors");
    assert!(desc.index_useful());
    // The indexed value is the accessor expression, not a schema field.
    let plan = desc.plan.as_ref().unwrap();
    assert_eq!(plan.key.to_string(), "tuple.get_int(value, \"pageRank\")");
    assert_eq!(plan.ranges[0].to_string(), "(9998, +inf)");
}

#[test]
fn benchmark1_projection_and_delta_undetected_due_to_serialization() {
    let report = analyze(&pavlo::benchmark1(9998));
    // A human sees a projection (avgDuration unused) and delta
    // (two integer fields); the analyzer cannot.
    assert_eq!(report.projection, ProjectOutcome::Opaque);
    assert_eq!(report.delta, DeltaOutcome::Opaque);
    let ann = pavlo::benchmark1_annotation();
    assert_eq!(ann.project, pavlo::Presence::Present);
    assert_eq!(ann.delta, pavlo::Presence::Present);
}

#[test]
fn benchmark2_projection_and_delta_detected_selection_absent() {
    let report = analyze(&pavlo::benchmark2());
    assert_eq!(report.selection, SelectOutcome::AlwaysEmits);
    let proj = report.projection.descriptor().expect("projection detected");
    assert_eq!(proj.used_fields, vec!["sourceIP", "adRevenue"]);
    assert_eq!(proj.dropped_fields.len(), 7);
    let delta = report.delta.descriptor().expect("delta detected");
    assert_eq!(delta.fields, vec!["visitDate", "adRevenue", "duration"]);
    // Direct-operation is not present: sourceIP reaches the output.
    assert!(report.direct.descriptor().is_none());
}

#[test]
fn benchmark3_visits_selection_detected() {
    let report = analyze(&pavlo::benchmark3_visits_mapper(1000, 2000));
    let desc = report.selection.descriptor().expect("date filter detected");
    let plan = desc.plan.as_ref().unwrap();
    assert_eq!(plan.key.to_string(), "value.visitDate");
    assert_eq!(plan.ranges[0].to_string(), "[1000, 2000)");
    // Whole record emitted for the join → no projection opportunity.
    assert_eq!(report.projection, ProjectOutcome::AllFieldsNeeded);
    assert!(report.delta.descriptor().is_some());
}

#[test]
fn benchmark3_rankings_side_always_emits() {
    let report = analyze(&pavlo::benchmark3_rankings_mapper());
    assert_eq!(report.selection, SelectOutcome::AlwaysEmits);
    assert_eq!(report.projection, ProjectOutcome::AllFieldsNeeded);
}

#[test]
fn benchmark4_selection_undetected_with_hashtable_witness() {
    let report = analyze(&pavlo::benchmark4());
    match &report.selection {
        SelectOutcome::Unknown(SelectMiss::NotFunctional(NonFunctional::UnknownCall(c))) => {
            assert!(
                c.starts_with("ht."),
                "the witness should be the Hashtable, got {c}"
            );
        }
        other => panic!("expected Hashtable-driven miss, got {other:?}"),
    }
    // A human DOES see the selection (paper: "the only serious
    // optimization overlooked by Manimal").
    assert_eq!(
        pavlo::benchmark4_annotation().select,
        pavlo::Presence::Present
    );
    // Projection/delta genuinely absent.
    assert_eq!(report.projection, ProjectOutcome::AllFieldsNeeded);
    assert_eq!(report.delta, DeltaOutcome::NoNumericFields);
}

/// "The analyzer emits no false positives": everywhere the human says
/// Not Present, the analyzer must not claim a detection.
#[test]
fn no_false_positives_against_human_annotations() {
    let cases: Vec<(mr_ir::Program, pavlo::HumanAnnotation)> = vec![
        (pavlo::benchmark1(9998), pavlo::benchmark1_annotation()),
        (pavlo::benchmark2(), pavlo::benchmark2_annotation()),
        (
            pavlo::benchmark3_visits_mapper(1000, 2000),
            pavlo::benchmark3_annotation(),
        ),
        (pavlo::benchmark4(), pavlo::benchmark4_annotation()),
    ];
    for (program, ann) in cases {
        let report = analyze(&program);
        if ann.select == pavlo::Presence::NotPresent {
            assert!(
                report.selection.descriptor().is_none(),
                "{}: selection false positive",
                program.name
            );
        }
        if ann.project == pavlo::Presence::NotPresent {
            assert!(
                report.projection.descriptor().is_none(),
                "{}: projection false positive",
                program.name
            );
        }
        if ann.delta == pavlo::Presence::NotPresent {
            assert!(
                report.delta.descriptor().is_none(),
                "{}: delta false positive",
                program.name
            );
        }
        if ann.direct == pavlo::Presence::NotPresent {
            assert!(
                report.direct.descriptor().is_none(),
                "{}: direct-operation false positive",
                program.name
            );
        }
    }
}
