//! The Manimal optimizer (paper §2.2 Step 2).
//!
//! "The optimizer examines the descriptors, the user's input file, and
//! the catalog to choose the most efficient execution plan currently
//! possible. The resulting execution descriptor indicates to the final
//! execution fabric which index file to use, and which optimizations
//! should be applied. … It currently decides using a simple hard-coded
//! ranking of applicable optimizations."
//!
//! Ranking implemented here (most to least preferred):
//! selection+projection B+Tree → selection B+Tree → projection+delta →
//! projection → dictionary/direct-operation → delta → full scan.
//! The one conflict the paper names — selection vs. delta-compression —
//! resolves in selection's favour by that ordering.
//!
//! The optimizer may also produce "a potentially-modified copy of the
//! user's original program" (§2): for direct-operation plans, string
//! constants compared against a dictionary-compressed field are
//! rewritten into their dictionary codes.

use std::path::Path;
use std::sync::Arc;

use mr_analysis::cfg::Cfg;
use mr_analysis::dataflow::ReachingDefs;
use mr_analysis::ranges::{Endpoint, KeyRange};
use mr_analysis::{AnalysisReport, SelectOutcome};
use mr_engine::InputSpec;
use mr_ir::function::{Function, Program};
use mr_ir::instr::{CmpOp, Instr, ParamId};
use mr_ir::value::Value;
use mr_storage::btree::ScanBound;
use mr_storage::dict::DictFileReader;

use crate::catalog::{Catalog, CatalogEntry, IndexKind};
use crate::error::Result;

/// Optimizer knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerConfig {
    /// The "safe mode" of paper §2 footnote 2: refuse plans that would
    /// change how often side-effecting code runs (i.e. selection indexes
    /// over programs with detected side effects).
    pub safe_mode: bool,
    /// Escape hatch: never engage map-side combining, even for reducers
    /// with a declared or proven combiner (`manimal run --no-combine`).
    pub no_combine: bool,
    /// Escape hatch for the trained-dictionary shuffle codec: when the
    /// instance asks for `dict-trained` spill compression, run with the
    /// static `dict` codec instead — no training pass, no dictionary
    /// artifacts (`manimal run --no-dict-train`). Jobs already running
    /// another codec are unaffected.
    pub no_dict_train: bool,
}

/// The plan handed to the execution fabric (paper Fig. 1's "execution
/// descriptor": optimization label, index file, predicate ranges).
pub struct ExecutionDescriptor {
    /// The physical input to read.
    pub input: InputSpec,
    /// The (possibly rewritten) map function to run.
    pub mapper: Function,
    /// Human-readable list of applied optimizations.
    pub applied: Vec<String>,
    /// The catalog entry backing the plan, if any.
    pub index: Option<CatalogEntry>,
    /// The optimizer's combiner decision: whether the fabric may engage
    /// the map-side combiner the job's reducer declares (or the
    /// `mr_analysis::combine` pass proved). `false` under
    /// [`OptimizerConfig::no_combine`]; for reducers without a
    /// combiner, `true` simply engages nothing.
    pub combine: bool,
}

impl std::fmt::Display for ExecutionDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.applied.is_empty() {
            write!(f, "full scan (no optimization applied)")
        } else {
            write!(f, "applied: {}", self.applied.join(" + "))
        }
    }
}

/// Choose the best plan for `program` over `input` given the catalog:
/// the head of [`enumerate_plans`]'s ranking.
pub fn choose_plan(
    program: &Program,
    report: &AnalysisReport,
    catalog: &Catalog,
    input: &Path,
    config: OptimizerConfig,
) -> Result<ExecutionDescriptor> {
    let mut plans = enumerate_plans(program, report, catalog, input, config)?;
    Ok(plans.remove(0))
}

/// Every candidate plan for `program` over `input`, in ranking order
/// (most preferred first). The last element is always the unoptimized
/// full scan, so the list is never empty and
/// [`choose_plan`] is exactly its head. The full candidate set is what
/// the plan-equivalence harness executes: *each* of these descriptors
/// must produce output byte-identical to the full scan.
pub fn enumerate_plans(
    program: &Program,
    report: &AnalysisReport,
    catalog: &Catalog,
    input: &Path,
    config: OptimizerConfig,
) -> Result<Vec<ExecutionDescriptor>> {
    // Stale catalog entries (artifact deleted from disk) are skipped
    // rather than crashing the job.
    let indexes: Vec<CatalogEntry> = catalog
        .indexes_for(input)
        .into_iter()
        .filter(|e| e.index_path.exists())
        .collect();
    let mut plans: Vec<ExecutionDescriptor> = Vec::new();

    // 1. Selection B+Tree (optionally combined with projection).
    if let SelectOutcome::Selection(sel) = &report.selection {
        let selection_safe = !config.safe_mode || report.side_effects.is_empty();
        if let (Some(plan), true) = (&sel.plan, selection_safe) {
            if !plan.is_full_scan() {
                let key_str = plan.key.to_string();
                // Prefer the combined selection+projection entry.
                let mut candidates: Vec<&CatalogEntry> = indexes
                    .iter()
                    .filter(
                        |e| matches!(&e.kind, IndexKind::Selection { key, .. } if *key == key_str),
                    )
                    .collect();
                candidates.sort_by_key(|e| {
                    // projected first
                    match &e.kind {
                        IndexKind::Selection {
                            projected_fields: Some(_),
                            ..
                        } => 0,
                        _ => 1,
                    }
                });
                let required: Vec<(ScanBound, ScanBound)> =
                    plan.ranges.iter().map(range_to_bounds).collect();
                for entry in candidates {
                    let IndexKind::Selection {
                        projected_fields,
                        covered,
                        ..
                    } = &entry.kind
                    else {
                        continue;
                    };
                    // The index materializes a view; it is usable only
                    // when every range this program needs is contained
                    // in a range the view covers.
                    let covered_bounds: Vec<(ScanBound, ScanBound)> =
                        covered.iter().filter_map(|r| r.to_bounds().ok()).collect();
                    let all_covered = required
                        .iter()
                        .all(|req| covered_bounds.iter().any(|cov| range_covers(cov, req)));
                    if !all_covered {
                        continue;
                    }
                    // A projected index is usable only if it stores every
                    // field this program can observe.
                    if let Some(stored) = projected_fields {
                        let needed = match report.projection.descriptor() {
                            Some(p) => p.used_fields.clone(),
                            // Program may observe anything: projected
                            // index unusable.
                            None => continue,
                        };
                        if !needed.iter().all(|f| stored.contains(f)) {
                            continue;
                        }
                    }
                    let ranges = plan.ranges.iter().map(range_to_bounds).collect();
                    let mut applied = vec![format!("selection(index on {key_str})")];
                    if projected_fields.is_some() {
                        applied.push("projection(clustered)".to_string());
                    }
                    plans.push(ExecutionDescriptor {
                        input: InputSpec::BTreeRanges {
                            path: entry.index_path.clone(),
                            ranges,
                        },
                        mapper: program.mapper.clone(),
                        applied,
                        index: Some(entry.clone()),
                        combine: !config.no_combine,
                    });
                }
            }
        }
    }

    // 2. Projection(+delta) artifacts.
    if let Some(proj) = report.projection.descriptor() {
        // Combined projection+delta first.
        for entry in &indexes {
            if let IndexKind::Delta {
                projected: Some(kept),
                fields,
            } = &entry.kind
            {
                if proj.used_fields.iter().all(|f| kept.contains(f)) {
                    plans.push(ExecutionDescriptor {
                        input: InputSpec::Delta {
                            path: entry.index_path.clone(),
                            widen_to: Some(Arc::clone(&program.value_schema)),
                        },
                        mapper: program.mapper.clone(),
                        applied: vec![
                            format!("projection(keep [{}])", kept.join(", ")),
                            format!("delta-compression([{}])", fields.join(", ")),
                        ],
                        index: Some(entry.clone()),
                        combine: !config.no_combine,
                    });
                }
            }
        }
        for entry in &indexes {
            if let IndexKind::Projection { fields } = &entry.kind {
                if proj.used_fields.iter().all(|f| fields.contains(f)) {
                    plans.push(ExecutionDescriptor {
                        input: InputSpec::Projected {
                            path: entry.index_path.clone(),
                            source_schema: Arc::clone(&program.value_schema),
                        },
                        mapper: program.mapper.clone(),
                        applied: vec![format!("projection(keep [{}])", fields.join(", "))],
                        index: Some(entry.clone()),
                        combine: !config.no_combine,
                    });
                }
            }
        }
    }

    // 3. Direct-operation on dictionary-compressed data.
    if let Some(direct) = report.direct.descriptor() {
        for entry in &indexes {
            if let IndexKind::Dict { fields } = &entry.kind {
                if direct.fields.iter().all(|f| fields.contains(f))
                    && fields.iter().all(|f| direct.fields.contains(f))
                {
                    // An unreadable/corrupt dictionary artifact makes
                    // this candidate unusable, not the whole planning
                    // pass — skip it like a stale entry (the
                    // early-return choose_plan never even opened it
                    // when a better plan existed).
                    let Ok(mapper) =
                        rewrite_dict_constants(&program.mapper, fields, &entry.index_path)
                    else {
                        continue;
                    };
                    plans.push(ExecutionDescriptor {
                        input: InputSpec::Dict {
                            path: entry.index_path.clone(),
                        },
                        mapper,
                        applied: vec![format!(
                            "direct-operation(dictionary on [{}])",
                            fields.join(", ")
                        )],
                        index: Some(entry.clone()),
                        combine: !config.no_combine,
                    });
                }
            }
        }
    }

    // 4. Plain delta compression.
    if report.delta.descriptor().is_some() {
        for entry in &indexes {
            if let IndexKind::Delta {
                projected: None,
                fields,
            } = &entry.kind
            {
                plans.push(ExecutionDescriptor {
                    input: InputSpec::Delta {
                        path: entry.index_path.clone(),
                        widen_to: None,
                    },
                    mapper: program.mapper.clone(),
                    applied: vec![format!("delta-compression([{}])", fields.join(", "))],
                    index: Some(entry.clone()),
                    combine: !config.no_combine,
                });
            }
        }
    }

    // The unoptimized full scan is always a candidate — and the
    // reference every other candidate must match byte for byte.
    plans.push(ExecutionDescriptor {
        input: InputSpec::SeqFile {
            path: input.to_path_buf(),
        },
        mapper: program.mapper.clone(),
        applied: vec![],
        index: None,
        combine: !config.no_combine,
    });
    Ok(plans)
}

/// The physical plan for a two-table equi-join stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlan {
    /// Load the whole build side into a shared in-memory hash table and
    /// probe it inline inside every map task — no build rows cross the
    /// shuffle at all. Only sound for build sides that fit in memory,
    /// which is what the size budget gates.
    Broadcast,
    /// Co-partition both sides by join key as tagged-union values and
    /// join each key group in the reducer (build/probe buffering, cross
    /// product). Works at any build-side size.
    Repartition,
}

impl JoinPlan {
    /// Stable CLI/wire name (`broadcast` / `repartition`), round-trips
    /// through [`JoinPlan::parse`].
    pub fn name(self) -> &'static str {
        match self {
            JoinPlan::Broadcast => "broadcast",
            JoinPlan::Repartition => "repartition",
        }
    }

    /// Look a plan up by name.
    pub fn parse(s: &str) -> Option<JoinPlan> {
        match s {
            "broadcast" => Some(JoinPlan::Broadcast),
            "repartition" => Some(JoinPlan::Repartition),
            _ => None,
        }
    }
}

/// Default build-side size budget for [`choose_join_plan`]: build
/// inputs up to this many bytes broadcast, larger ones repartition.
pub const DEFAULT_BROADCAST_BUDGET: u64 = 64 * 1024 * 1024;

/// The optimizer's join-plan decision together with its witness: what
/// was measured, against what budget, and why the plan won — the same
/// explain-your-work posture as [`ExecutionDescriptor::applied`].
#[derive(Debug, Clone)]
pub struct JoinDecision {
    /// The chosen physical plan.
    pub plan: JoinPlan,
    /// On-disk size of the build input, the quantity the rule tests.
    pub build_bytes: u64,
    /// The budget it was tested against.
    pub budget: u64,
    /// `true` when the caller forced the plan (`--join-plan`), making
    /// the size rule advisory only.
    pub forced: bool,
}

impl std::fmt::Display for JoinDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rel = if self.build_bytes <= self.budget {
            "≤"
        } else {
            ">"
        };
        write!(
            f,
            "{} join ({}build side {} B {rel} budget {} B)",
            self.plan.name(),
            if self.forced { "forced; " } else { "" },
            self.build_bytes,
            self.budget
        )
    }
}

/// Pick the physical plan for a two-table equi-join: **broadcast** when
/// the build input fits the size budget, **repartition** otherwise.
/// `force` (the `--join-plan` escape hatch) overrides the rule but the
/// decision still records the measured size, so a forced choice is
/// auditable.
pub fn choose_join_plan(
    build_input: &Path,
    budget: u64,
    force: Option<JoinPlan>,
) -> Result<JoinDecision> {
    let build_bytes = std::fs::metadata(build_input)
        .map_err(crate::error::ManimalError::Io)?
        .len();
    let plan = force.unwrap_or(if build_bytes <= budget {
        JoinPlan::Broadcast
    } else {
        JoinPlan::Repartition
    });
    Ok(JoinDecision {
        plan,
        build_bytes,
        budget,
        forced: force.is_some(),
    })
}

/// Map a proven combiner descriptor (`mr_analysis::combine`) onto the
/// engine combiner that implements it. `Product` folds are proven
/// combinable but have no builtin implementation yet, so they fall back
/// to the plain pipeline — the optimizer's "decline cleanly" posture.
pub fn combiner_for(
    descriptor: &mr_analysis::CombinerDescriptor,
) -> Option<Arc<dyn mr_engine::Combiner>> {
    use mr_analysis::CombineKind;
    match descriptor.kind {
        CombineKind::Sum => mr_engine::Builtin::Sum.combiner(),
        CombineKind::Count => mr_engine::Builtin::Count.combiner(),
        CombineKind::Product => None,
    }
}

/// Turn a user-submitted IR `reduce(key, values)` into an executable
/// reducer factory, running the `mr-analysis` combine pass on the way:
/// when the function is proven to be an algebraic fold, the factory
/// declares the matching engine combiner, so
/// [`Manimal::execute_plan`](crate::Manimal::execute_plan) engages
/// map-side combining exactly as it does for builtin reducers — the
/// analysis-selected plan property, end to end. Returns the pass
/// outcome alongside so callers can report what was proven (or why
/// combining was declined).
///
/// `program` is the submitted *map* program: Sum/Product folds combine
/// only when the map's emitted values are proven integer-only
/// ([`mr_analysis::int_only_emit_values`]) — IR `add` promotes
/// `Int + Double` to `Double`, so a sequential fold over a mixed
/// numeric domain is not associative and combining it could change
/// output. Count folds ignore the values entirely and are exempt.
pub fn ir_reducer(
    reduce: Function,
    program: &Program,
) -> (
    Arc<dyn mr_engine::ReducerFactory>,
    mr_analysis::CombineOutcome,
) {
    use mr_analysis::{CombineKind, CombineMiss, CombineOutcome};
    let mut outcome = mr_analysis::find_combine(&reduce);
    let needs_int_domain = matches!(
        outcome.descriptor().map(|d| d.kind),
        Some(CombineKind::Sum | CombineKind::Product)
    );
    if needs_int_domain && !mr_analysis::int_only_emit_values(program) {
        outcome = CombineOutcome::NotCombinable(CombineMiss::UnprovenValueDomain(
            "map emit values are not proven integer-only".into(),
        ));
    }
    let combiner = outcome.descriptor().and_then(combiner_for);
    let factory: Arc<dyn mr_engine::ReducerFactory> =
        mr_engine::IrReducerFactory::with_combiner(reduce, combiner);
    (factory, outcome)
}

/// `cov` admits every key that `req` admits.
fn range_covers(cov: &(ScanBound, ScanBound), req: &(ScanBound, ScanBound)) -> bool {
    low_covers(&cov.0, &req.0) && high_covers(&cov.1, &req.1)
}

/// The covering low bound admits everything the required low bound does.
fn low_covers(cov: &ScanBound, req: &ScanBound) -> bool {
    match (cov, req) {
        (ScanBound::Unbounded, _) => true,
        (_, ScanBound::Unbounded) => false,
        (ScanBound::Incl(c), ScanBound::Incl(r)) => c <= r,
        (ScanBound::Incl(c), ScanBound::Excl(r)) => c <= r,
        (ScanBound::Excl(c), ScanBound::Incl(r)) => c < r,
        (ScanBound::Excl(c), ScanBound::Excl(r)) => c <= r,
    }
}

/// The covering high bound admits everything the required high bound
/// does.
fn high_covers(cov: &ScanBound, req: &ScanBound) -> bool {
    match (cov, req) {
        (ScanBound::Unbounded, _) => true,
        (_, ScanBound::Unbounded) => false,
        (ScanBound::Incl(c), ScanBound::Incl(r)) => c >= r,
        (ScanBound::Incl(c), ScanBound::Excl(r)) => c >= r,
        (ScanBound::Excl(c), ScanBound::Incl(r)) => c > r,
        (ScanBound::Excl(c), ScanBound::Excl(r)) => c >= r,
    }
}

/// Convert an analyzer key range into B+Tree scan bounds.
pub fn range_to_bounds(range: &KeyRange) -> (ScanBound, ScanBound) {
    let low = match &range.low {
        Endpoint::Open => ScanBound::Unbounded,
        Endpoint::Incl(v) => ScanBound::Incl(v.clone()),
        Endpoint::Excl(v) => ScanBound::Excl(v.clone()),
    };
    let high = match &range.high {
        Endpoint::Open => ScanBound::Unbounded,
        Endpoint::Incl(v) => ScanBound::Incl(v.clone()),
        Endpoint::Excl(v) => ScanBound::Excl(v.clone()),
    };
    (low, high)
}

/// Produce the "potentially-modified copy of the user's original
/// program": rewrite string constants that are equality-compared against
/// a dictionary-compressed field into their integer codes. Constants
/// absent from the dictionary become a sentinel code that matches no
/// record.
fn rewrite_dict_constants(
    func: &Function,
    dict_fields: &[String],
    dict_path: &Path,
) -> Result<Function> {
    let reader = DictFileReader::open(dict_path)?;
    let cfg = Cfg::build(func);
    let rd = ReachingDefs::compute(func, &cfg);

    // Find Cmp(Eq/Ne) instructions where one operand reaches only loads
    // of a dict field and the other only string constants; collect the
    // constant-instruction pcs with the field they compare against.
    let mut rewrites: Vec<(usize, String)> = Vec::new();
    for (pc, instr) in func.instrs.iter().enumerate() {
        let Instr::Cmp { op, lhs, rhs, .. } = instr else {
            continue;
        };
        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            continue;
        }
        for (a, b) in [(lhs, rhs), (rhs, lhs)] {
            let a_defs = rd.reaching(func, &cfg, pc, *a);
            let field = a_defs
                .iter()
                .try_fold(None::<String>, |acc, &d| match &func.instrs[d] {
                    Instr::GetField { obj, field, .. } if dict_fields.contains(field) => {
                        let from_value = rd.reaching(func, &cfg, d, *obj).into_iter().all(|od| {
                            matches!(
                                func.instrs[od],
                                Instr::LoadParam {
                                    param: ParamId::Value,
                                    ..
                                }
                            )
                        });
                        if !from_value {
                            return Err(());
                        }
                        match &acc {
                            Some(f) if f != field => Err(()),
                            _ => Ok(Some(field.clone())),
                        }
                    }
                    _ => Err(()),
                });
            let Ok(Some(field)) = field else { continue };
            for d in rd.reaching(func, &cfg, pc, *b) {
                if matches!(&func.instrs[d], Instr::Const { val, .. } if val.as_str().is_some()) {
                    rewrites.push((d, field.clone()));
                }
            }
        }
    }

    let mut out = func.clone();
    for (pc, field) in rewrites {
        let Instr::Const { val, .. } = &mut out.instrs[pc] else {
            continue;
        };
        let Some(s) = val.as_str() else { continue };
        let code = reader
            .dictionary(&field)
            .and_then(|d| d.code_of(s))
            .unwrap_or(-1); // matches no dictionary code
        *val = Value::Int(code);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_storage::dict::DictFileWriter;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("manimal-optimizer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn coverage_logic() {
        let cov = (ScanBound::Excl(Value::Int(10)), ScanBound::Unbounded);
        // Narrower required range: covered.
        assert!(range_covers(
            &cov,
            &(ScanBound::Incl(Value::Int(50)), ScanBound::Unbounded)
        ));
        // Wider: not covered.
        assert!(!range_covers(
            &cov,
            &(ScanBound::Incl(Value::Int(5)), ScanBound::Unbounded)
        ));
        // Excl(10) does not admit 10, Incl(10) requires it.
        assert!(!range_covers(
            &cov,
            &(ScanBound::Incl(Value::Int(10)), ScanBound::Unbounded)
        ));
        assert!(range_covers(
            &cov,
            &(
                ScanBound::Excl(Value::Int(10)),
                ScanBound::Incl(Value::Int(99))
            )
        ));
    }

    #[test]
    fn range_conversion() {
        let r = KeyRange {
            low: Endpoint::Excl(Value::Int(1)),
            high: Endpoint::Open,
        };
        let (lo, hi) = range_to_bounds(&r);
        assert_eq!(lo, ScanBound::Excl(Value::Int(1)));
        assert_eq!(hi, ScanBound::Unbounded);
    }

    #[test]
    fn dict_constant_rewrite() {
        // Build a dict file with a known dictionary.
        let schema = Schema::new(
            "V",
            vec![("destURL", FieldType::Str), ("n", FieldType::Int)],
        )
        .into_arc();
        let path = tmp("dict");
        let mut w =
            DictFileWriter::create(&path, Arc::clone(&schema), &["destURL".into()]).unwrap();
        for u in ["http://a", "http://b"] {
            w.append(&record(&schema, vec![u.into(), 1.into()]))
                .unwrap();
        }
        w.finish().unwrap();

        let func = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.destURL
              r2 = const "http://b"
              r3 = cmp eq r1, r2
              br r3, t, e
            t:
              r4 = field r0.n
              r5 = const "unrelated"
              emit r5, r4
            e:
              ret
            }
            "#,
        )
        .unwrap();
        let rewritten = rewrite_dict_constants(&func, &["destURL".to_string()], &path).unwrap();
        // The compared constant becomes its code (http://b inserted
        // second → code 1)…
        assert_eq!(
            rewritten.instrs[2],
            Instr::Const {
                dst: mr_ir::instr::Reg(2),
                val: Value::Int(1)
            }
        );
        // …and the unrelated constant is untouched.
        assert!(matches!(
            &rewritten.instrs[6],
            Instr::Const { val, .. } if val.as_str() == Some("unrelated")
        ));
    }

    #[test]
    fn dict_rewrite_absent_constant_gets_sentinel() {
        let schema = Schema::new("V", vec![("u", FieldType::Str)]).into_arc();
        let path = tmp("dict-absent");
        let mut w = DictFileWriter::create(&path, Arc::clone(&schema), &["u".into()]).unwrap();
        w.append(&record(&schema, vec!["present".into()])).unwrap();
        w.finish().unwrap();
        let func = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.u
              r2 = const "absent"
              r3 = cmp eq r1, r2
              br r3, t, e
            t:
              emit r1, r3
            e:
              ret
            }
            "#,
        )
        .unwrap();
        let rewritten = rewrite_dict_constants(&func, &["u".to_string()], &path).unwrap();
        assert!(matches!(
            &rewritten.instrs[2],
            Instr::Const { val, .. } if *val == Value::Int(-1)
        ));
    }
}
