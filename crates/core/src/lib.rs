//! # Manimal — automatic optimization for MapReduce programs
//!
//! A Rust reproduction of "Automatic Optimization for MapReduce
//! Programs" (Jahani, Cafarella, Ré — PVLDB 4(6), 2011). Manimal
//! statically analyzes compiled, *unmodified* MapReduce programs,
//! detects relational-style operations hidden in free-form `map()` code,
//! and executes the job against classic database physical optimizations:
//! B+Tree selection indexes, field projection, delta-compression and
//! direct operation on dictionary-compressed data.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use manimal::{Manimal, Builtin};
//! use mr_ir::asm::parse_function;
//! use mr_ir::{Program, Schema, FieldType};
//!
//! // The paper's §2 example: if (v.rank > 1) emit(k, 1);
//! let mapper = parse_function(r#"
//!     func map(key, value) {
//!       r0 = param value
//!       r1 = field r0.rank
//!       r2 = const 1
//!       r3 = cmp gt r1, r2
//!       br r3, then, exit
//!     then:
//!       r4 = param key
//!       emit r4, r2
//!     exit:
//!       ret
//!     }
//! "#).unwrap();
//! let schema = Schema::new("WebPage", vec![
//!     ("url", FieldType::Str),
//!     ("rank", FieldType::Int),
//!     ("content", FieldType::Str),
//! ]).into_arc();
//! let program = Program::new("select-demo", mapper, schema);
//!
//! let manimal = Manimal::new("/tmp/manimal-work").unwrap();
//! let submission = manimal.submit(&program, "/data/webpages.seq");
//! println!("{}", submission.report);           // what the analyzer found
//! manimal.build_indexes(&submission).unwrap(); // the admin says yes
//! let run = manimal
//!     .execute(&submission, Arc::new(Builtin::Count))
//!     .unwrap();                               // runs via the B+Tree
//! println!("applied: {:?}", run.applied);
//! ```
//!
//! The pipeline (paper Fig. 1): [`submit`](Manimal::submit) runs the
//! **analyzer** (re-exported from `mr-analysis`), producing optimization
//! descriptors and [`indexgen`] programs; [`plan`](Manimal::plan) runs
//! the **optimizer** against the [`catalog`]; execution happens on the
//! `mr-engine` **fabric** with the physical layouts of `mr-storage`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod error;
pub mod indexgen;
pub mod optimizer;
pub mod service;
pub mod submit;

pub use catalog::{Catalog, CatalogEntry, IndexKind};
pub use error::{ManimalError, Result};
pub use indexgen::{plan_index_programs, IndexGenProgram};
pub use mr_analysis::{analyze, find_combine, AnalysisReport, CombineOutcome};
pub use mr_engine::{Builtin, FaultPlan, JobResult, ShuffleCompression};
pub use optimizer::{
    choose_join_plan, choose_plan, combiner_for, enumerate_plans, ir_reducer, ExecutionDescriptor,
    JoinDecision, JoinPlan, OptimizerConfig, DEFAULT_BROADCAST_BUDGET,
};
pub use service::{
    serve_blocking, ServiceClient, ServiceConfig, ServiceHandle, ServiceStats, StatsSnapshot,
    SubmitOutcome,
};
pub use submit::{
    DagInput, DagRun, DagStage, Execution, JobDag, JoinJob, Manimal, StageJob, StageRun, Submission,
};
