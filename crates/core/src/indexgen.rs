//! Index-generation programs (paper §2.2 Step 1).
//!
//! "This component also creates an index generation program that runs on
//! the same input data as the user's program. … This program is itself a
//! MapReduce program, and when executed generates an indexed version of
//! the submitted job's input data."
//!
//! [`plan_index_programs`] applies the paper's combination policy — "the
//! current analyzer always chooses the index program that exploits as
//! many optimizations as possible", with the one stated conflict, "we
//! currently favor selection over delta-compression" (§2.2 fn. 3):
//!
//! * selection (+ projection if also present) → clustered B+Tree;
//! * else projection (+ delta if also present) → projected or
//!   projected-delta file;
//! * else delta → delta file;
//! * direct-operation → dictionary file (orthogonal artifact).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_analysis::expr::Expr;
use mr_analysis::{AnalysisReport, SelectOutcome};
use mr_engine::mapper::{MapStats, Mapper, MapperFactory};
use mr_engine::{run_job, InputBinding, InputSpec, JobConfig, OutputSpec};
use mr_ir::record::Record;
use mr_ir::value::Value;
use mr_storage::btree::BTreeWriter;
use mr_storage::delta::DeltaFileWriter;
use mr_storage::dict::DictFileWriter;
use mr_storage::seqfile::SeqFileMeta;

use mr_storage::btree::ScanBound;

use crate::catalog::{CatalogEntry, IndexKind, RangeRepr};
use crate::error::{ManimalError, Result};
use crate::optimizer::range_to_bounds;

/// An executable index-generation program.
pub struct IndexGenProgram {
    /// What artifact this builds.
    pub kind: IndexKind,
    /// The input file it reads.
    pub input: PathBuf,
    /// Where the artifact lands.
    pub output: PathBuf,
    /// The index-key expression (selection programs only).
    pub key_expr: Option<Expr>,
    /// Key ranges the selection view materializes (selection only).
    pub view_ranges: Vec<(ScanBound, ScanBound)>,
}

impl std::fmt::Display for IndexGenProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            IndexKind::Selection {
                key,
                projected_fields,
                ..
            } => {
                write!(f, "build B+Tree on {key}")?;
                if let Some(fields) = projected_fields {
                    write!(f, " storing only [{}]", fields.join(", "))?;
                }
            }
            IndexKind::Projection { fields } => {
                write!(f, "build projected file keeping [{}]", fields.join(", "))?
            }
            IndexKind::Delta { fields, projected } => {
                write!(f, "build delta file on [{}]", fields.join(", "))?;
                if let Some(kept) = projected {
                    write!(f, " keeping only [{}]", kept.join(", "))?;
                }
            }
            IndexKind::Dict { fields } => {
                write!(f, "build dictionary file on [{}]", fields.join(", "))?
            }
        }
        write!(f, ": {} -> {}", self.input.display(), self.output.display())
    }
}

/// Derive the index programs the analyzer recommends for this report.
pub fn plan_index_programs(
    report: &AnalysisReport,
    input: &Path,
    workdir: &Path,
) -> Vec<IndexGenProgram> {
    let mut programs = Vec::new();
    let stem = input
        .file_name()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "input".to_string());
    let out = |suffix: &str| workdir.join(format!("{stem}.{suffix}"));

    let selection = match &report.selection {
        SelectOutcome::Selection(d) if d.index_useful() => Some(d),
        _ => None,
    };
    let projection = report.projection.descriptor();
    let delta = report.delta.descriptor();
    let direct = report.direct.descriptor();

    if let Some(sel) = selection {
        let plan = sel.plan.as_ref().expect("index_useful implies plan");
        let view_ranges: Vec<(ScanBound, ScanBound)> =
            plan.ranges.iter().map(range_to_bounds).collect();
        let covered: Vec<RangeRepr> = view_ranges
            .iter()
            .filter_map(|(lo, hi)| RangeRepr::from_bounds(lo, hi).ok())
            .collect();
        programs.push(IndexGenProgram {
            kind: IndexKind::Selection {
                key: plan.key.to_string(),
                covered,
                projected_fields: projection.map(|p| p.used_fields.clone()),
            },
            input: input.to_path_buf(),
            output: out("select.idx"),
            key_expr: Some(plan.key.clone()),
            view_ranges,
        });
    } else if let Some(proj) = projection {
        if let Some(d) = delta {
            // Combined projection + delta: delta-encode the numeric
            // fields that survive the projection.
            let kept_numeric: Vec<String> = d
                .fields
                .iter()
                .filter(|f| proj.used_fields.contains(f))
                .cloned()
                .collect();
            if kept_numeric.is_empty() {
                programs.push(IndexGenProgram {
                    kind: IndexKind::Projection {
                        fields: proj.used_fields.clone(),
                    },
                    input: input.to_path_buf(),
                    output: out("proj.idx"),
                    key_expr: None,
                    view_ranges: vec![],
                });
            } else {
                programs.push(IndexGenProgram {
                    kind: IndexKind::Delta {
                        fields: kept_numeric,
                        projected: Some(proj.used_fields.clone()),
                    },
                    input: input.to_path_buf(),
                    output: out("projdelta.idx"),
                    key_expr: None,
                    view_ranges: vec![],
                });
            }
        } else {
            programs.push(IndexGenProgram {
                kind: IndexKind::Projection {
                    fields: proj.used_fields.clone(),
                },
                input: input.to_path_buf(),
                output: out("proj.idx"),
                key_expr: None,
                view_ranges: vec![],
            });
        }
    } else if let Some(d) = delta {
        programs.push(IndexGenProgram {
            kind: IndexKind::Delta {
                fields: d.fields.clone(),
                projected: None,
            },
            input: input.to_path_buf(),
            output: out("delta.idx"),
            key_expr: None,
            view_ranges: vec![],
        });
    }

    if let Some(dd) = direct {
        programs.push(IndexGenProgram {
            kind: IndexKind::Dict {
                fields: dd.fields.clone(),
            },
            input: input.to_path_buf(),
            output: out("dict.idx"),
            key_expr: None,
            view_ranges: vec![],
        });
    }
    programs
}

impl IndexGenProgram {
    /// Execute the program, producing the artifact and a catalog entry.
    /// Index-build jobs run with an unbounded shuffle; use
    /// [`run_with_shuffle_budget`](Self::run_with_shuffle_budget) to
    /// bound it.
    pub fn run(&self) -> Result<CatalogEntry> {
        self.run_with_shuffle_budget(None)
    }

    /// Execute the program with the fabric's shuffle memory bounded by
    /// `shuffle_buffer_bytes` — selection builds are a full-input
    /// MapReduce job into a single reducer, exactly the shape that
    /// outgrows RAM first. Map-side combining stays on (a no-op for the
    /// order-preserving `Identity` reducer these jobs use today).
    pub fn run_with_shuffle_budget(
        &self,
        shuffle_buffer_bytes: Option<usize>,
    ) -> Result<CatalogEntry> {
        self.run_tuned(shuffle_buffer_bytes, true, Default::default())
    }

    /// [`run_with_shuffle_budget`](Self::run_with_shuffle_budget) with
    /// the optimizer's combiner decision plumbed through (`combine:
    /// false` — the `--no-combine` escape hatch — keeps the build
    /// job's pipeline plain even if its reducer declares a combiner)
    /// and the instance's spill codec
    /// ([`mr_engine::JobConfig::shuffle_compression`]).
    pub fn run_tuned(
        &self,
        shuffle_buffer_bytes: Option<usize>,
        combine: bool,
        shuffle_compression: mr_engine::ShuffleCompression,
    ) -> Result<CatalogEntry> {
        let input_bytes = std::fs::metadata(&self.input)?.len();
        match &self.kind {
            IndexKind::Selection {
                projected_fields, ..
            } => self.build_selection(
                projected_fields.as_deref(),
                input_bytes,
                shuffle_buffer_bytes,
                combine,
                shuffle_compression,
            ),
            IndexKind::Projection { fields } => self.build_projection(fields, input_bytes),
            IndexKind::Delta { fields, projected } => {
                self.build_delta(fields, projected.as_deref(), input_bytes)
            }
            IndexKind::Dict { fields } => self.build_dict(fields, input_bytes),
        }
    }

    /// Selection indexes are built by an actual MapReduce job: map
    /// evaluates the index-key expression per record, the shuffle sorts
    /// by that key, and the (single) reduce output streams into the
    /// B+Tree bulk loader.
    fn build_selection(
        &self,
        projected_fields: Option<&[String]>,
        input_bytes: u64,
        shuffle_buffer_bytes: Option<usize>,
        combine: bool,
        shuffle_compression: mr_engine::ShuffleCompression,
    ) -> Result<CatalogEntry> {
        let expr = self
            .key_expr
            .clone()
            .ok_or_else(|| ManimalError::IndexGen("selection program without key".into()))?;
        let meta = SeqFileMeta::open(&self.input)?;
        let source_schema = Arc::clone(&meta.schema);
        let stored_schema = match projected_fields {
            Some(fields) => Arc::new(source_schema.project(fields)),
            None => Arc::clone(&source_schema),
        };

        let mut job = JobConfig {
            name: format!("index-gen {}", self.output.display()),
            inputs: vec![InputBinding {
                input: InputSpec::SeqFile {
                    path: self.input.clone(),
                },
                mapper: Arc::new(ExprKeyMapperFactory { expr }),
                join: None,
            }],
            num_reducers: 1,
            reducer: Arc::new(mr_engine::Builtin::Identity),
            output: OutputSpec::InMemory,
            map_parallelism: mr_engine::job::available_parallelism(),
            sort_output: true,
            shuffle_buffer_bytes,
            shuffle_compression,
            spill_dir: None,
            dict_store: None,
            combiner: None,
            max_task_attempts: 1,
            fault_plan: None,
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: Default::default(),
        };
        if combine {
            job = job.with_declared_combiner();
        }
        let result = run_job(&job)?;

        let in_view = |key: &Value| -> bool {
            if self.view_ranges.is_empty() {
                return true; // no restriction: full clustered index
            }
            self.view_ranges.iter().any(|(lo, hi)| {
                let low_ok = match lo {
                    ScanBound::Unbounded => true,
                    ScanBound::Incl(b) => key >= b,
                    ScanBound::Excl(b) => key > b,
                };
                let high_ok = match hi {
                    ScanBound::Unbounded => true,
                    ScanBound::Incl(b) => key <= b,
                    ScanBound::Excl(b) => key < b,
                };
                low_ok && high_ok
            })
        };
        let mut writer = BTreeWriter::create(&self.output, Arc::clone(&stored_schema))?;
        for (index_key, packed) in &result.output {
            if !in_view(index_key) {
                // Outside the materialized view (paper §2.2): the index
                // is a view on the records the predicate can ever
                // select, which is what keeps its space overhead at the
                // selectivity level rather than 100%.
                continue;
            }
            let Value::List(kv) = packed else {
                return Err(ManimalError::IndexGen("malformed index-gen pair".into()));
            };
            let orig_key = &kv[0];
            let Some(record) = kv[1].as_record() else {
                return Err(ManimalError::IndexGen("malformed index-gen record".into()));
            };
            let stored = if projected_fields.is_some() {
                record.project_to(Arc::clone(&stored_schema))
            } else {
                record.clone()
            };
            writer.append(index_key, orig_key, &stored)?;
        }
        let stats = writer.finish()?;
        Ok(CatalogEntry {
            input_path: self.input.clone(),
            index_path: self.output.clone(),
            kind: self.kind.clone(),
            index_bytes: stats.file_size,
            input_bytes,
        })
    }

    fn build_projection(&self, fields: &[String], input_bytes: u64) -> Result<CatalogEntry> {
        let meta = SeqFileMeta::open(&self.input)?;
        let records = meta
            .read_all()?
            .collect::<mr_storage::Result<Vec<Record>>>()?;
        mr_storage::colfile::write_projected(&self.output, &meta.schema, fields, records)?;
        Ok(CatalogEntry {
            input_path: self.input.clone(),
            index_path: self.output.clone(),
            kind: self.kind.clone(),
            index_bytes: std::fs::metadata(&self.output)?.len(),
            input_bytes,
        })
    }

    fn build_delta(
        &self,
        fields: &[String],
        projected: Option<&[String]>,
        input_bytes: u64,
    ) -> Result<CatalogEntry> {
        let meta = SeqFileMeta::open(&self.input)?;
        let schema = match projected {
            Some(kept) => Arc::new(meta.schema.project(kept)),
            None => Arc::clone(&meta.schema),
        };
        let mut writer = DeltaFileWriter::create(&self.output, Arc::clone(&schema), fields)?;
        for rec in meta.read_all()? {
            let rec = rec?;
            let stored = if projected.is_some() {
                rec.project_to(Arc::clone(&schema))
            } else {
                rec
            };
            writer.append(&stored)?;
        }
        writer.finish()?;
        Ok(CatalogEntry {
            input_path: self.input.clone(),
            index_path: self.output.clone(),
            kind: self.kind.clone(),
            index_bytes: std::fs::metadata(&self.output)?.len(),
            input_bytes,
        })
    }

    fn build_dict(&self, fields: &[String], input_bytes: u64) -> Result<CatalogEntry> {
        let meta = SeqFileMeta::open(&self.input)?;
        let mut writer = DictFileWriter::create(&self.output, Arc::clone(&meta.schema), fields)?;
        for rec in meta.read_all()? {
            writer.append(&rec?)?;
        }
        writer.finish()?;
        Ok(CatalogEntry {
            input_path: self.input.clone(),
            index_path: self.output.clone(),
            kind: self.kind.clone(),
            index_bytes: std::fs::metadata(&self.output)?.len(),
            input_bytes,
        })
    }
}

/// The map side of the selection index-generation job: emit
/// `(key_expr(record), [orig_key, record])`.
struct ExprKeyMapper {
    expr: Expr,
}

impl Mapper for ExprKeyMapper {
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> mr_engine::Result<MapStats> {
        let index_key = self
            .expr
            .eval(key, value)
            .map_err(mr_engine::EngineError::Map)?;
        out.push((index_key, Value::list(vec![key.clone(), value.clone()])));
        Ok(MapStats::default())
    }
}

struct ExprKeyMapperFactory {
    expr: Expr,
}

impl MapperFactory for ExprKeyMapperFactory {
    fn create(&self) -> Box<dyn Mapper> {
        Box::new(ExprKeyMapper {
            expr: self.expr.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_analysis::analyze;
    use mr_ir::asm::parse_function;
    use mr_ir::function::Program;
    use mr_ir::schema::{FieldType, Schema};

    fn webpages() -> Arc<Schema> {
        Schema::new(
            "WebPages",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    fn plan_for(src: &str, schema: Arc<Schema>) -> Vec<IndexGenProgram> {
        let program = Program::new("t", parse_function(src).unwrap(), schema);
        let report = analyze(&program);
        plan_index_programs(&report, Path::new("/data/in.seq"), Path::new("/work"))
    }

    /// "The current analyzer always chooses the index program that
    /// exploits as many optimizations as possible": selection absorbs
    /// projection into one combined B+Tree.
    #[test]
    fn selection_absorbs_projection() {
        let programs = plan_for(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 10
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = field r0.url
              emit r4, r1
            e:
              ret
            }
            "#,
            webpages(),
        );
        assert_eq!(programs.len(), 1);
        match &programs[0].kind {
            IndexKind::Selection {
                key,
                projected_fields: Some(fields),
                covered,
            } => {
                assert_eq!(key, "value.rank");
                assert_eq!(fields, &vec!["url".to_string(), "rank".to_string()]);
                assert_eq!(covered.len(), 1);
            }
            other => panic!("expected combined selection, got {other:?}"),
        }
        assert!(programs[0].key_expr.is_some());
        assert_eq!(programs[0].view_ranges.len(), 1);
    }

    /// Without a selection, projection and delta merge into a projected
    /// delta file when a numeric field survives the projection.
    #[test]
    fn projection_and_delta_combine() {
        let programs = plan_for(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = field r0.rank
              emit r1, r2
              ret
            }
            "#,
            webpages(),
        );
        assert_eq!(programs.len(), 1);
        match &programs[0].kind {
            IndexKind::Delta { fields, projected } => {
                assert_eq!(fields, &vec!["rank".to_string()]);
                assert_eq!(
                    projected.as_ref().unwrap(),
                    &vec!["url".to_string(), "rank".to_string()]
                );
            }
            other => panic!("expected projected delta, got {other:?}"),
        }
    }

    /// Projection whose kept fields have no numerics falls back to a
    /// plain projected file even though the schema has numeric fields.
    #[test]
    fn projection_without_surviving_numerics() {
        let programs = plan_for(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.url
              r2 = const 1
              emit r1, r2
              ret
            }
            "#,
            webpages(),
        );
        assert_eq!(programs.len(), 1);
        match &programs[0].kind {
            IndexKind::Projection { fields } => {
                assert_eq!(fields, &vec!["url".to_string()]);
            }
            other => panic!("expected plain projection, got {other:?}"),
        }
    }

    /// The dictionary artifact is orthogonal: recommended alongside
    /// whatever the main combination produced.
    #[test]
    fn dict_is_orthogonal() {
        let schema = Schema::new(
            "V",
            vec![("destURL", FieldType::Str), ("duration", FieldType::Int)],
        )
        .into_arc();
        let program = Program::new(
            "t",
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.destURL
                  r2 = field r0.duration
                  emit r1, r2
                  ret
                }
                "#,
            )
            .unwrap(),
            schema,
        )
        .with_key_dropped_from_output();
        let report = analyze(&program);
        let programs = plan_index_programs(&report, Path::new("/data/in.seq"), Path::new("/work"));
        assert_eq!(programs.len(), 2, "main combo + dict");
        assert!(programs
            .iter()
            .any(|p| matches!(&p.kind, IndexKind::Delta { .. })));
        assert!(programs
            .iter()
            .any(|p| matches!(&p.kind, IndexKind::Dict { fields } if fields == &vec!["destURL".to_string()])));
    }

    /// Nothing detected → nothing recommended.
    #[test]
    fn nothing_to_recommend() {
        let schema = Schema::new("D", vec![("content", FieldType::Str)]).into_arc();
        let programs = plan_for(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = param key
              emit r1, r0
              ret
            }
            "#,
            schema,
        );
        assert!(programs.is_empty());
    }
}
