//! The `manimald` client/server wire protocol.
//!
//! Every message is one frame in the task-protocol discipline
//! ([`mr_engine::backend::protocol`], docs/FORMATS.md):
//!
//! ```text
//! [tag u8][payload_len varint][payload bytes][crc32(payload) u32 LE]
//! ```
//!
//! The framing layer (length bound, checksum, clean-EOF semantics) is
//! reused verbatim — the service only defines its own tag space and
//! JSON payloads. Conventions follow `mr-engine/backend/wire.rs`:
//! compact JSON payloads, output pairs as lowercase hex of the
//! self-describing rowcodec value encoding, IR as MR-IR assembly text.
//! Clients send paths as UTF-8 strings; the server resolves them in its
//! own filesystem namespace (daemon and clients share a host).

use std::path::PathBuf;

use mr_ir::value::Value;
use mr_json::Json;
use mr_storage::rowcodec::{decode_value, encode_value};

use crate::catalog::{hex_decode, hex_encode};
use crate::error::{ManimalError, Result};

/// Client → server: submit a job ([`JobRequest`] payload).
pub const TAG_SUBMIT: u8 = 1;
/// Server → client: the job ran to completion ([`JobReply`] payload).
pub const TAG_RESULT: u8 = 2;
/// Server → client: admission control turned the job away
/// ([`Rejection`] payload) — typed, so clients can back off instead of
/// parsing an error string.
pub const TAG_REJECTED: u8 = 3;
/// Server → client: the job was admitted but failed (payload: the
/// error rendered as UTF-8 text).
pub const TAG_ERROR: u8 = 4;
/// Client → server: request a counter snapshot (empty payload).
pub const TAG_STATS: u8 = 5;
/// Server → client: the counter snapshot as JSON.
pub const TAG_STATS_OK: u8 = 6;
/// Client → server: an input file was regenerated; drop its catalog
/// entries and every cached result over it (payload: `{"input": path}`).
pub const TAG_INVALIDATE: u8 = 7;
/// Server → client: invalidation done (payload: dropped cache entries
/// as `{"dropped": n}`).
pub const TAG_INVALIDATE_OK: u8 = 8;
/// Client → server: stop accepting work, finish in-flight jobs, exit
/// (empty payload).
pub const TAG_SHUTDOWN: u8 = 9;
/// Server → client: shutdown acknowledged; the daemon is draining.
pub const TAG_SHUTDOWN_OK: u8 = 10;

fn bad(what: &str) -> ManimalError {
    ManimalError::Service(format!("malformed service payload: {what}"))
}

fn field<'j>(j: &'j Json, key: &str) -> Result<&'j Json> {
    j.get(key).ok_or_else(|| bad(&format!("missing `{key}`")))
}

fn string_field(j: &Json, key: &str) -> Result<String> {
    Ok(field(j, key)?
        .as_str()
        .ok_or_else(|| bad(&format!("`{key}` is not a string")))?
        .to_string())
}

fn bool_field(j: &Json, key: &str) -> Result<bool> {
    match field(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(&format!("`{key}` is not a bool"))),
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64> {
    field(j, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("`{key}` is not a count")))
}

/// One job submission: the program as MR-IR assembly, the input path
/// (resolved server-side; its seqfile header carries the schema), and
/// the execution knobs a remote client may choose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Job name (for logs and `JobConfig::name`).
    pub name: String,
    /// The map function as MR-IR assembly text.
    pub program_asm: String,
    /// Input sequence file path, resolved in the server's namespace.
    pub input: PathBuf,
    /// Builtin reducer name (`sum`, `count`, …), ignored when
    /// `reduce_ir` is present.
    pub reducer: String,
    /// Optional compiled IR reduce function (assembly text); the
    /// server's analyzer proves — or declines — its combiner.
    pub reduce_ir: Option<String>,
    /// Build + register the recommended index programs before planning
    /// (deduplicated in-flight across clients).
    pub build_indexes: bool,
    /// Run the unoptimized full-scan baseline instead of the planned
    /// execution.
    pub baseline: bool,
}

impl JobRequest {
    /// Encode as a compact JSON payload.
    pub fn to_payload(&self) -> Result<Vec<u8>> {
        let input = self.input.to_str().ok_or_else(|| {
            ManimalError::Service(format!("non-UTF-8 input path {:?}", self.input))
        })?;
        let doc = Json::obj([
            ("name", Json::str(self.name.clone())),
            ("program_asm", Json::str(self.program_asm.clone())),
            ("input", Json::str(input)),
            ("reducer", Json::str(self.reducer.clone())),
            (
                "reduce_ir",
                match &self.reduce_ir {
                    Some(src) => Json::str(src.clone()),
                    None => Json::Null,
                },
            ),
            ("build_indexes", Json::Bool(self.build_indexes)),
            ("baseline", Json::Bool(self.baseline)),
        ]);
        Ok(doc.to_string_compact().into_bytes())
    }

    /// Decode from a payload.
    pub fn from_payload(payload: &[u8]) -> Result<JobRequest> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("request is not UTF-8"))?;
        let j = mr_json::parse(text).map_err(|e| bad(&format!("request JSON: {e}")))?;
        Ok(JobRequest {
            name: string_field(&j, "name")?,
            program_asm: string_field(&j, "program_asm")?,
            input: PathBuf::from(string_field(&j, "input")?),
            reducer: string_field(&j, "reducer")?,
            reduce_ir: match field(&j, "reduce_ir")? {
                Json::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or_else(|| bad("`reduce_ir` is not a string"))?
                        .to_string(),
                ),
            },
            build_indexes: bool_field(&j, "build_indexes")?,
            baseline: bool_field(&j, "baseline")?,
        })
    }
}

/// A completed job: the plan that ran and the full output, with every
/// key/value hex-encoded through the self-describing rowcodec value
/// codec so results survive the text protocol byte-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReply {
    /// Human-readable summary of the executed plan.
    pub plan: String,
    /// Applied optimizations (empty for the baseline full scan).
    pub applied: Vec<String>,
    /// The engaged map-side combiner's name, if any.
    pub combiner: Option<String>,
    /// Whether this reply was served from the daemon's result cache.
    pub cache_hit: bool,
    /// Index builds this submission waited out instead of duplicating.
    pub deduped_builds: u64,
    /// Output pairs, each value hex-encoded (rowcodec).
    pub output_hex: Vec<(String, String)>,
}

impl JobReply {
    /// Encode as a compact JSON payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let doc = Json::obj([
            ("plan", Json::str(self.plan.clone())),
            (
                "applied",
                Json::Arr(self.applied.iter().map(Json::str).collect()),
            ),
            (
                "combiner",
                match &self.combiner {
                    Some(name) => Json::str(name.clone()),
                    None => Json::Null,
                },
            ),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("deduped_builds", Json::Int(self.deduped_builds as i64)),
            (
                "output",
                Json::Arr(
                    self.output_hex
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), Json::str(v.clone())]))
                        .collect(),
                ),
            ),
        ]);
        doc.to_string_compact().into_bytes()
    }

    /// Decode from a payload.
    pub fn from_payload(payload: &[u8]) -> Result<JobReply> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("reply is not UTF-8"))?;
        let j = mr_json::parse(text).map_err(|e| bad(&format!("reply JSON: {e}")))?;
        let applied = field(&j, "applied")?
            .as_arr()
            .ok_or_else(|| bad("`applied` is not an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("`applied` element is not a string"))
            })
            .collect::<Result<Vec<_>>>()?;
        let output_hex = field(&j, "output")?
            .as_arr()
            .ok_or_else(|| bad("`output` is not an array"))?
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([k, v]) => match (k.as_str(), v.as_str()) {
                    (Some(k), Some(v)) => Ok((k.to_string(), v.to_string())),
                    _ => Err(bad("output pair element is not a string")),
                },
                _ => Err(bad("output pair is not a 2-array")),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(JobReply {
            plan: string_field(&j, "plan")?,
            applied,
            combiner: match field(&j, "combiner")? {
                Json::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or_else(|| bad("`combiner` is not a string"))?
                        .to_string(),
                ),
            },
            cache_hit: bool_field(&j, "cache_hit")?,
            deduped_builds: u64_field(&j, "deduped_builds")?,
            output_hex,
        })
    }

    /// Decode the hex output pairs back into values — the client's view
    /// of the job output, byte-identical to a local run.
    pub fn decode_output(&self) -> Result<Vec<(Value, Value)>> {
        self.output_hex
            .iter()
            .map(|(k, v)| Ok((decode_hex_value(k)?, decode_hex_value(v)?)))
            .collect()
    }
}

/// Hex-encode one value through the rowcodec self-describing codec.
pub fn encode_hex_value(v: &Value) -> Result<String> {
    let mut buf = Vec::new();
    encode_value(v, &mut buf)?;
    Ok(hex_encode(&buf))
}

/// Decode one hex rowcodec value.
pub fn decode_hex_value(hex: &str) -> Result<Value> {
    let bytes = hex_decode(hex).ok_or_else(|| bad("bad hex in output pair"))?;
    Ok(decode_value(&bytes)?.0)
}

/// A typed admission rejection: the FIFO queue was full. Carries the
/// live occupancy so clients can report or back off meaningfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Jobs waiting in the queue when this one was turned away.
    pub queued: u64,
    /// The queue bound that was hit.
    pub queue_cap: u64,
    /// Jobs running at that moment.
    pub running: u64,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission queue full ({}/{} queued, {} running); retry later",
            self.queued, self.queue_cap, self.running
        )
    }
}

impl Rejection {
    /// Encode as a compact JSON payload.
    pub fn to_payload(&self) -> Vec<u8> {
        Json::obj([
            ("queued", Json::Int(self.queued as i64)),
            ("queue_cap", Json::Int(self.queue_cap as i64)),
            ("running", Json::Int(self.running as i64)),
        ])
        .to_string_compact()
        .into_bytes()
    }

    /// Decode from a payload.
    pub fn from_payload(payload: &[u8]) -> Result<Rejection> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("rejection is not UTF-8"))?;
        let j = mr_json::parse(text).map_err(|e| bad(&format!("rejection JSON: {e}")))?;
        Ok(Rejection {
            queued: u64_field(&j, "queued")?,
            queue_cap: u64_field(&j, "queue_cap")?,
            running: u64_field(&j, "running")?,
        })
    }
}

/// Encode an invalidation request.
pub fn invalidate_payload(input: &std::path::Path) -> Result<Vec<u8>> {
    let input = input
        .to_str()
        .ok_or_else(|| ManimalError::Service(format!("non-UTF-8 input path {input:?}")))?;
    Ok(Json::obj([("input", Json::str(input))])
        .to_string_compact()
        .into_bytes())
}

/// Decode an invalidation request.
pub fn parse_invalidate(payload: &[u8]) -> Result<PathBuf> {
    let text = std::str::from_utf8(payload).map_err(|_| bad("invalidate is not UTF-8"))?;
    let j = mr_json::parse(text).map_err(|e| bad(&format!("invalidate JSON: {e}")))?;
    Ok(PathBuf::from(string_field(&j, "input")?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest {
            name: "bench1".into(),
            program_asm: "func map(key, value) { ret }".into(),
            input: PathBuf::from("/data/rankings.seq"),
            reducer: "count".into(),
            reduce_ir: None,
            build_indexes: true,
            baseline: false,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request();
        assert_eq!(
            JobRequest::from_payload(&req.to_payload().unwrap()).unwrap(),
            req
        );
        let mut with_ir = request();
        with_ir.reduce_ir = Some("func reduce(key, values) { ret }".into());
        assert_eq!(
            JobRequest::from_payload(&with_ir.to_payload().unwrap()).unwrap(),
            with_ir
        );
    }

    #[test]
    fn reply_round_trips_with_byte_exact_values() {
        let pairs = vec![
            (Value::str("http://a"), Value::Int(42)),
            (Value::Int(-7), Value::Double(2.5)),
        ];
        let reply = JobReply {
            plan: "full scan".into(),
            applied: vec!["selection".into()],
            combiner: Some("sum".into()),
            cache_hit: false,
            deduped_builds: 1,
            output_hex: pairs
                .iter()
                .map(|(k, v)| (encode_hex_value(k).unwrap(), encode_hex_value(v).unwrap()))
                .collect(),
        };
        let back = JobReply::from_payload(&reply.to_payload()).unwrap();
        assert_eq!(back, reply);
        assert_eq!(back.decode_output().unwrap(), pairs);
    }

    #[test]
    fn rejection_round_trips_and_displays() {
        let r = Rejection {
            queued: 4,
            queue_cap: 4,
            running: 2,
        };
        assert_eq!(Rejection::from_payload(&r.to_payload()).unwrap(), r);
        assert!(r.to_string().contains("4/4 queued"), "{r}");
    }

    #[test]
    fn invalidate_round_trips() {
        let p = std::path::Path::new("/data/x.seq");
        assert_eq!(
            parse_invalidate(&invalidate_payload(p).unwrap()).unwrap(),
            p
        );
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for garbage in [b"not json".as_slice(), b"{}", b"\xff\xfe"] {
            assert!(JobRequest::from_payload(garbage).is_err());
            assert!(JobReply::from_payload(garbage).is_err());
            assert!(Rejection::from_payload(garbage).is_err());
        }
    }
}
