//! `manimald` — a long-running job service over a Unix socket.
//!
//! A single daemon owns one [`Manimal`] instance — one catalog, one
//! shared buffer pool, one trained-dictionary store — and serves many
//! clients concurrently. Three policies turn the one-shot CLI pipeline
//! into a service:
//!
//! * **Admission** ([`admission`]): a bounded FIFO queue in front of a
//!   fixed number of job slots. Overload is a *typed* rejection frame,
//!   not an error string.
//! * **In-flight index-build dedup**: two clients planning the same
//!   [`IndexGenProgram`] produce one build — the second blocks on the
//!   first's build cell and both get the registered entry. Builds
//!   already in the catalog with a live artifact are skipped entirely.
//! * **Result caching** ([`cache`]): a size-bounded LRU keyed by the
//!   full request, invalidated when a client reports an input file
//!   regenerated ([`proto::TAG_INVALIDATE`]).
//!
//! Wire format: [`proto`]. Client: [`client::ServiceClient`]. Every
//! decision is counted ([`ServiceStats`]) and snapshottable over the
//! protocol, so the bench harness can assert dedup and cache behaviour
//! from outside the process.

pub mod admission;
pub mod cache;
pub mod client;
pub mod proto;

use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mr_engine::backend::protocol::{read_frame, write_frame};
use mr_ir::asm::parse_function;
use mr_ir::function::Program;
use mr_json::Json;
use mr_storage::seqfile::SeqFileMeta;

use crate::catalog::CatalogEntry;
use crate::error::{ManimalError, Result};
use crate::indexgen::IndexGenProgram;
use crate::submit::Manimal;

use admission::{Admission, Admit};
use cache::{CachedResult, ResultCache};
use proto::{
    encode_hex_value, parse_invalidate, JobReply, JobRequest, TAG_ERROR, TAG_INVALIDATE,
    TAG_INVALIDATE_OK, TAG_REJECTED, TAG_RESULT, TAG_SHUTDOWN, TAG_SHUTDOWN_OK, TAG_STATS,
    TAG_STATS_OK, TAG_SUBMIT,
};

pub use client::{ServiceClient, SubmitOutcome};
pub use proto::Rejection;

/// A monotonically increasing service counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Every decision the daemon makes, counted.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Submissions that entered the admission queue.
    pub queued: Counter,
    /// Submissions granted a job slot.
    pub admitted: Counter,
    /// Submissions turned away by the full queue.
    pub rejected: Counter,
    /// Jobs that ran to completion.
    pub completed: Counter,
    /// Jobs that were admitted but failed.
    pub failed: Counter,
    /// Index builds actually executed by this daemon.
    pub index_builds: Counter,
    /// Index builds a submission waited out instead of duplicating —
    /// the in-flight dedup at work.
    pub index_builds_deduped: Counter,
    /// Submissions answered from the result cache.
    pub cache_hits: Counter,
    /// Submissions that had to run (and then populated the cache).
    pub cache_misses: Counter,
    /// Invalidation requests served.
    pub invalidations: Counter,
}

impl ServiceStats {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queued: self.queued.get(),
            admitted: self.admitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            index_builds: self.index_builds.get(),
            index_builds_deduped: self.index_builds_deduped.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            invalidations: self.invalidations.get(),
        }
    }
}

/// A point-in-time copy of [`ServiceStats`], as carried by
/// [`proto::TAG_STATS_OK`] frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submissions that entered the admission queue.
    pub queued: u64,
    /// Submissions granted a job slot.
    pub admitted: u64,
    /// Submissions turned away by the full queue.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that were admitted but failed.
    pub failed: u64,
    /// Index builds actually executed.
    pub index_builds: u64,
    /// Index builds deduplicated in-flight.
    pub index_builds_deduped: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Invalidation requests served.
    pub invalidations: u64,
}

impl StatsSnapshot {
    const FIELDS: [&'static str; 10] = [
        "queued",
        "admitted",
        "rejected",
        "completed",
        "failed",
        "index_builds",
        "index_builds_deduped",
        "cache_hits",
        "cache_misses",
        "invalidations",
    ];

    fn values(&self) -> [u64; 10] {
        [
            self.queued,
            self.admitted,
            self.rejected,
            self.completed,
            self.failed,
            self.index_builds,
            self.index_builds_deduped,
            self.cache_hits,
            self.cache_misses,
            self.invalidations,
        ]
    }

    /// Encode as a compact JSON payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let vals = self.values();
        Json::obj(
            Self::FIELDS
                .iter()
                .zip(vals)
                .map(|(name, v)| (*name, Json::Int(v as i64))),
        )
        .to_string_compact()
        .into_bytes()
    }

    /// Decode from a payload.
    pub fn from_payload(payload: &[u8]) -> Result<StatsSnapshot> {
        let bad = |what: &str| ManimalError::Service(format!("malformed stats payload: {what}"));
        let text = std::str::from_utf8(payload).map_err(|_| bad("not UTF-8"))?;
        let j = mr_json::parse(text).map_err(|e| bad(&e.to_string()))?;
        let mut vals = [0u64; 10];
        for (slot, name) in vals.iter_mut().zip(Self::FIELDS) {
            *slot = j
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing `{name}`")))?;
        }
        let [queued, admitted, rejected, completed, failed, index_builds, index_builds_deduped, cache_hits, cache_misses, invalidations] =
            vals;
        Ok(StatsSnapshot {
            queued,
            admitted,
            rejected,
            completed,
            failed,
            index_builds,
            index_builds_deduped,
            cache_hits,
            cache_misses,
            invalidations,
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, v) in Self::FIELDS.iter().zip(self.values()) {
            writeln!(f, "{name:>22}  {v}")?;
        }
        Ok(())
    }
}

/// How to run a daemon: where to listen, where the shared catalog and
/// index artifacts live, and the admission/cache bounds.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// The shared [`Manimal`] working directory (catalog, index
    /// artifacts, trained dictionaries).
    pub workdir: PathBuf,
    /// Concurrent job slots.
    pub max_running: usize,
    /// Waiting submissions beyond the running ones; one more is a
    /// typed rejection.
    pub queue_cap: usize,
    /// Result-cache budget in bytes of encoded output.
    pub cache_bytes: usize,
}

impl ServiceConfig {
    /// A config with default bounds: 4 slots, a 16-deep queue, a 64 MiB
    /// result cache.
    pub fn new(socket: impl Into<PathBuf>, workdir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            socket: socket.into(),
            workdir: workdir.into(),
            max_running: 4,
            queue_cap: 16,
            cache_bytes: 64 << 20,
        }
    }
}

/// One in-flight index build; later requesters for the same descriptor
/// block here instead of building again.
#[derive(Debug, Default)]
struct BuildCell {
    /// `None` while building; the build outcome once done (errors as
    /// rendered text so waiters get a typed service error).
    done: Mutex<Option<std::result::Result<CatalogEntry, String>>>,
    cv: Condvar,
}

/// The daemon state shared by every connection handler.
pub struct JobService {
    manimal: Manimal,
    admission: Admission,
    cache: Mutex<ResultCache>,
    /// In-flight index builds keyed by descriptor hash.
    builds: Mutex<HashMap<u64, Arc<BuildCell>>>,
    stats: ServiceStats,
    stop: AtomicBool,
}

/// FNV-1a, the repo's stock content hash for small keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The builtin reducer registry shared by the CLI and the daemon.
pub fn builtin_reducer(name: &str) -> Result<mr_engine::Builtin> {
    use mr_engine::Builtin;
    Ok(match name {
        "sum" => Builtin::Sum,
        "count" => Builtin::Count,
        "max" => Builtin::Max,
        "min" => Builtin::Min,
        "identity" => Builtin::Identity,
        "first" => Builtin::First,
        "sum-drop-key" => Builtin::SumDropKey,
        other => return Err(ManimalError::Service(format!("unknown reducer `{other}`"))),
    })
}

impl JobService {
    fn new(cfg: &ServiceConfig) -> Result<JobService> {
        Ok(JobService {
            manimal: Manimal::new(&cfg.workdir)?,
            admission: Admission::new(cfg.max_running, cfg.queue_cap),
            cache: Mutex::new(ResultCache::new(cfg.cache_bytes)),
            builds: Mutex::new(HashMap::new()),
            stats: ServiceStats::default(),
            stop: AtomicBool::new(false),
        })
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Build one index program, deduplicating in-flight: the first
    /// requester builds, everyone else blocks on its [`BuildCell`].
    /// Returns 1 when this call waited out someone else's build.
    fn build_index_deduped(&self, prog: &IndexGenProgram) -> Result<u64> {
        // Already registered with a live artifact: nothing to build.
        let registered = self
            .manimal
            .catalog()
            .indexes_for(&prog.input)
            .into_iter()
            .any(|e| e.kind == prog.kind && e.index_path.exists());
        if registered {
            return Ok(0);
        }
        let key = fnv1a(
            format!(
                "{}|{}|{}",
                prog.kind,
                prog.input.display(),
                prog.output.display()
            )
            .as_bytes(),
        );
        let (cell, leader) = {
            let mut builds = self.builds.lock().unwrap_or_else(|e| e.into_inner());
            match builds.get(&key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell = Arc::new(BuildCell::default());
                    builds.insert(key, Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if !leader {
            // Someone else is building this exact descriptor: wait for
            // their outcome instead of duplicating the job.
            self.stats.index_builds_deduped.bump();
            let mut done = cell.done.lock().unwrap_or_else(|e| e.into_inner());
            while done.is_none() {
                done = cell.cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
            return match done.as_ref().expect("loop ensures Some") {
                Ok(_) => Ok(0),
                Err(msg) => Err(ManimalError::Service(format!(
                    "deduplicated index build failed: {msg}"
                ))),
            };
        }
        self.stats.index_builds.bump();
        let outcome = self.manimal.build_index(prog);
        let text_outcome = match &outcome {
            Ok(entry) => Ok(entry.clone()),
            Err(e) => Err(e.to_string()),
        };
        {
            let mut done = cell.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = Some(text_outcome);
        }
        cell.cv.notify_all();
        self.builds
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        outcome.map(|_| 0)
    }

    /// Run one submission end to end; the reply frame (tag + payload).
    fn handle_submit(&self, req: &JobRequest) -> Result<(u8, Vec<u8>)> {
        let _slot = match self.admission.admit(&self.stats) {
            Admit::Granted(slot) => slot,
            Admit::Rejected(r) => return Ok((TAG_REJECTED, r.to_payload())),
        };
        let key = fnv1a(&req.to_payload()?);
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
        {
            self.stats.cache_hits.bump();
            let reply = JobReply {
                plan: hit.plan,
                applied: hit.applied,
                combiner: hit.combiner,
                cache_hit: true,
                deduped_builds: 0,
                output_hex: hit.output_hex,
            };
            return Ok((TAG_RESULT, reply.to_payload()));
        }
        self.stats.cache_misses.bump();

        let func = parse_function(&req.program_asm)
            .map_err(|e| ManimalError::Service(format!("program: {e}")))?;
        mr_ir::verify::verify(&func).map_err(|errs| {
            let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
            ManimalError::Service(format!(
                "program failed verification:\n{}",
                lines.join("\n")
            ))
        })?;
        let meta = SeqFileMeta::open(&req.input)?;
        let program = Program::new(req.name.clone(), func, Arc::clone(&meta.schema));
        let submission = self.manimal.submit(&program, &req.input);

        let mut deduped = 0;
        if req.build_indexes {
            for prog in &submission.index_programs {
                deduped += self.build_index_deduped(prog)?;
            }
        }

        let reducer: Arc<dyn mr_engine::ReducerFactory> = match &req.reduce_ir {
            Some(src) => {
                let func = parse_function(src)
                    .map_err(|e| ManimalError::Service(format!("reduce ir: {e}")))?;
                mr_ir::verify::verify(&func).map_err(|errs| {
                    let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
                    ManimalError::Service(format!(
                        "reduce ir failed verification:\n{}",
                        lines.join("\n")
                    ))
                })?;
                crate::optimizer::ir_reducer(func, &program).0
            }
            None => Arc::new(builtin_reducer(&req.reducer)?),
        };

        let exec = if req.baseline {
            self.manimal.execute_baseline(&submission, reducer)?
        } else {
            self.manimal.execute(&submission, reducer)?
        };
        self.stats.completed.bump();

        let output_hex = exec
            .result
            .output
            .iter()
            .map(|(k, v)| Ok((encode_hex_value(k)?, encode_hex_value(v)?)))
            .collect::<Result<Vec<_>>>()?;
        let cached = CachedResult {
            plan: exec.descriptor_summary.clone(),
            applied: exec.applied.clone(),
            combiner: exec.combiner.map(str::to_string),
            output_hex: output_hex.clone(),
        };
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, &req.input, cached);
        let reply = JobReply {
            plan: exec.descriptor_summary,
            applied: exec.applied,
            combiner: exec.combiner.map(str::to_string),
            cache_hit: false,
            deduped_builds: deduped,
            output_hex,
        };
        Ok((TAG_RESULT, reply.to_payload()))
    }

    /// Drop catalog entries and cached results for a regenerated input.
    fn handle_invalidate(&self, input: &Path) -> Result<u64> {
        self.manimal.catalog().invalidate(input)?;
        let dropped = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .invalidate_input(input) as u64;
        self.stats.invalidations.bump();
        Ok(dropped)
    }

    /// Serve one client connection until it hangs up, the daemon stops,
    /// or the stream errors.
    fn serve_connection(self: &Arc<Self>, stream: UnixStream) {
        // Short read timeouts let idle connections notice a shutdown
        // instead of pinning their handler thread forever.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut stream = stream;
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => break, // clean hangup
                Err(mr_engine::EngineError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stopping() {
                        break;
                    }
                    continue;
                }
                Err(_) => break, // torn frame or dead peer: drop the connection
            };
            let outcome = match frame {
                (TAG_SUBMIT, payload) => {
                    if self.stopping() {
                        Ok((TAG_ERROR, b"daemon is shutting down".to_vec()))
                    } else {
                        JobRequest::from_payload(&payload).and_then(|req| {
                            self.handle_submit(&req)
                                .inspect_err(|_| self.stats.failed.bump())
                        })
                    }
                }
                (TAG_STATS, _) => Ok((TAG_STATS_OK, self.stats.snapshot().to_payload())),
                (TAG_INVALIDATE, payload) => parse_invalidate(&payload)
                    .and_then(|input| self.handle_invalidate(&input))
                    .map(|dropped| {
                        let body = Json::obj([("dropped", Json::Int(dropped as i64))]);
                        (TAG_INVALIDATE_OK, body.to_string_compact().into_bytes())
                    }),
                (TAG_SHUTDOWN, _) => {
                    self.stop.store(true, Ordering::SeqCst);
                    let _ = write_frame(&mut stream, TAG_SHUTDOWN_OK, b"");
                    break;
                }
                (tag, _) => Ok((TAG_ERROR, format!("unknown request tag {tag}").into_bytes())),
            };
            let (tag, payload) = match outcome {
                Ok(reply) => reply,
                Err(e) => (TAG_ERROR, e.to_string().into_bytes()),
            };
            if write_frame(&mut stream, tag, &payload).is_err() {
                break; // client went away mid-reply
            }
        }
    }
}

/// A running daemon: join it, read its counters, shut it down.
pub struct ServiceHandle {
    svc: Arc<JobService>,
    socket: PathBuf,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServiceHandle {
    /// The daemon's live counter snapshot (in-process view; remote
    /// clients use [`ServiceClient::stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.svc.stats.snapshot()
    }

    /// True once a client (or [`Self::shutdown`]) asked the daemon to
    /// stop.
    pub fn stop_requested(&self) -> bool {
        self.svc.stopping()
    }

    /// Stop accepting connections, let in-flight jobs finish, join
    /// every thread, remove the socket. Idempotent with a client-sent
    /// shutdown.
    pub fn shutdown(mut self) -> Result<StatsSnapshot> {
        self.svc.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            accept
                .join()
                .map_err(|_| ManimalError::Service("accept thread panicked".into()))?;
        }
        let handlers =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handlers {
            h.join()
                .map_err(|_| ManimalError::Service("connection handler panicked".into()))?;
        }
        let _ = std::fs::remove_file(&self.socket);
        Ok(self.svc.stats.snapshot())
    }
}

/// Start a daemon for `cfg`: bind the socket (replacing a stale file),
/// spawn the accept loop, return a handle.
pub fn start(cfg: ServiceConfig) -> Result<ServiceHandle> {
    if cfg.socket.exists() {
        std::fs::remove_file(&cfg.socket)?;
    }
    if let Some(parent) = cfg.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let listener = UnixListener::bind(&cfg.socket)
        .map_err(|e| ManimalError::Service(format!("bind {}: {e}", cfg.socket.display())))?;
    listener.set_nonblocking(true)?;
    let svc = Arc::new(JobService::new(&cfg)?);
    let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let svc = Arc::clone(&svc);
        let handlers = Arc::clone(&handlers);
        std::thread::spawn(move || loop {
            if svc.stopping() {
                break;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let svc = Arc::clone(&svc);
                    let handler = std::thread::spawn(move || svc.serve_connection(stream));
                    handlers
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handler);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("manimald: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
    };
    Ok(ServiceHandle {
        svc,
        socket: cfg.socket,
        accept: Some(accept),
        handlers,
    })
}

/// Run a daemon in the foreground until a client sends shutdown; the
/// `manimald` binary's whole main loop.
pub fn serve_blocking(cfg: ServiceConfig) -> Result<StatsSnapshot> {
    let handle = start(cfg)?;
    while !handle.stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_round_trips() {
        let stats = ServiceStats::default();
        stats.queued.bump();
        stats.queued.bump();
        stats.cache_hits.add(3);
        let snap = stats.snapshot();
        assert_eq!(snap.queued, 2);
        assert_eq!(snap.cache_hits, 3);
        let back = StatsSnapshot::from_payload(&snap.to_payload()).unwrap();
        assert_eq!(back, snap);
        assert!(snap.to_string().contains("cache_hits"));
    }

    #[test]
    fn builtin_reducer_registry_matches_cli_names() {
        for name in [
            "sum",
            "count",
            "max",
            "min",
            "identity",
            "first",
            "sum-drop-key",
        ] {
            assert!(builtin_reducer(name).is_ok(), "{name}");
        }
        assert!(builtin_reducer("no-such-reducer").is_err());
    }

    #[test]
    fn fnv_is_stable_and_key_sensitive() {
        let a = fnv1a(b"kind|/in|/out");
        assert_eq!(a, fnv1a(b"kind|/in|/out"), "deterministic");
        assert_ne!(a, fnv1a(b"kind|/in|/other"), "descriptor-sensitive");
    }
}
