//! The `manimald` client: one Unix-socket connection speaking the
//! service frame protocol.
//!
//! The client is deliberately dumb — connect, write one request frame,
//! read one reply frame, surface the typed outcome. Retry/backoff
//! policy belongs to callers (the CLI and the bench harness make
//! different choices).

use std::os::unix::net::UnixStream;
use std::path::Path;

use mr_engine::backend::protocol::{read_frame, write_frame};

use super::proto::{
    invalidate_payload, JobReply, JobRequest, Rejection, TAG_ERROR, TAG_INVALIDATE,
    TAG_INVALIDATE_OK, TAG_REJECTED, TAG_RESULT, TAG_SHUTDOWN, TAG_SHUTDOWN_OK, TAG_STATS,
    TAG_STATS_OK, TAG_SUBMIT,
};
use super::StatsSnapshot;
use crate::error::{ManimalError, Result};

/// The outcome of one submission: either the job ran (possibly from
/// cache) or admission control turned it away.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The job completed; the reply carries the plan and full output.
    Completed(JobReply),
    /// The admission queue was full.
    Rejected(Rejection),
}

/// A connected `manimald` client.
pub struct ServiceClient {
    stream: UnixStream,
}

fn service_err(e: impl std::fmt::Display) -> ManimalError {
    ManimalError::Service(e.to_string())
}

impl ServiceClient {
    /// Connect to a daemon listening on `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> Result<ServiceClient> {
        let socket = socket.as_ref();
        let stream = UnixStream::connect(socket)
            .map_err(|e| ManimalError::Service(format!("connect {}: {e}", socket.display())))?;
        Ok(ServiceClient { stream })
    }

    /// One request/response turn on the stream.
    fn call(&mut self, tag: u8, payload: &[u8]) -> Result<(u8, Vec<u8>)> {
        write_frame(&mut self.stream, tag, payload).map_err(service_err)?;
        match read_frame(&mut self.stream).map_err(service_err)? {
            Some(frame) => Ok(frame),
            None => Err(ManimalError::Service(
                "daemon hung up before replying".into(),
            )),
        }
    }

    /// Submit a job and block until the daemon replies.
    pub fn submit(&mut self, req: &JobRequest) -> Result<SubmitOutcome> {
        let (tag, payload) = self.call(TAG_SUBMIT, &req.to_payload()?)?;
        match tag {
            TAG_RESULT => Ok(SubmitOutcome::Completed(JobReply::from_payload(&payload)?)),
            TAG_REJECTED => Ok(SubmitOutcome::Rejected(Rejection::from_payload(&payload)?)),
            TAG_ERROR => Err(ManimalError::Service(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(ManimalError::Service(format!(
                "unexpected reply tag {other} to a submission"
            ))),
        }
    }

    /// Fetch the daemon's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        let (tag, payload) = self.call(TAG_STATS, b"")?;
        if tag != TAG_STATS_OK {
            return Err(ManimalError::Service(format!(
                "unexpected reply tag {tag} to a stats request"
            )));
        }
        StatsSnapshot::from_payload(&payload)
    }

    /// Tell the daemon `input` was regenerated: its catalog entries and
    /// every cached result over it are dropped. Returns how many cache
    /// entries were invalidated.
    pub fn invalidate(&mut self, input: &Path) -> Result<u64> {
        let (tag, payload) = self.call(TAG_INVALIDATE, &invalidate_payload(input)?)?;
        if tag != TAG_INVALIDATE_OK {
            return Err(ManimalError::Service(format!(
                "unexpected reply tag {tag} to an invalidation"
            )));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ManimalError::Service("invalidate ack is not UTF-8".into()))?;
        let j = mr_json::parse(text)
            .map_err(|e| ManimalError::Service(format!("invalidate ack JSON: {e}")))?;
        j.get("dropped")
            .and_then(mr_json::Json::as_u64)
            .ok_or_else(|| ManimalError::Service("invalidate ack missing `dropped`".into()))
    }

    /// Ask the daemon to finish in-flight jobs and exit. Returns once
    /// the daemon acknowledges it is draining.
    pub fn shutdown(&mut self) -> Result<()> {
        let (tag, _) = self.call(TAG_SHUTDOWN, b"")?;
        if tag != TAG_SHUTDOWN_OK {
            return Err(ManimalError::Service(format!(
                "unexpected reply tag {tag} to a shutdown request"
            )));
        }
        Ok(())
    }
}
