//! A size-bounded LRU cache for hot job results.
//!
//! The daemon's whole value proposition is reuse across submissions:
//! identical jobs over unchanged inputs should cost a cache lookup, not
//! a MapReduce run. Entries are keyed by a hash of the full request
//! (program text, input path, reducer, knobs) and priced by the bytes
//! of their encoded output, so one huge result can't silently pin the
//! budget. Eviction is least-recently-used; invalidation drops every
//! entry whose *input file* was regenerated, because a new file under
//! the same path makes the cached output a lie regardless of recency.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// A cached execution result — the reply fields that survive reuse
/// (`cache_hit`/`deduped_builds` are per-submission, not cacheable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Human-readable summary of the plan that produced this result.
    pub plan: String,
    /// Applied optimizations.
    pub applied: Vec<String>,
    /// Engaged combiner name, if any.
    pub combiner: Option<String>,
    /// Output pairs, hex-encoded (rowcodec) — the wire form, so a hit
    /// serializes without re-encoding.
    pub output_hex: Vec<(String, String)>,
}

impl CachedResult {
    /// The cache cost of this entry: the bytes its strings occupy.
    pub fn cost(&self) -> usize {
        self.plan.len()
            + self.applied.iter().map(String::len).sum::<usize>()
            + self.combiner.as_ref().map_or(0, String::len)
            + self
                .output_hex
                .iter()
                .map(|(k, v)| k.len() + v.len())
                .sum::<usize>()
    }
}

#[derive(Debug)]
struct CacheSlot {
    input: PathBuf,
    cost: usize,
    /// Monotonic recency stamp; smallest = least recently used.
    tick: u64,
    value: CachedResult,
}

/// The size-bounded LRU (see module docs).
#[derive(Debug)]
pub struct ResultCache {
    max_bytes: usize,
    bytes: usize,
    tick: u64,
    slots: HashMap<u64, CacheSlot>,
    evictions: u64,
}

impl ResultCache {
    /// A cache bounded at `max_bytes` of entry cost.
    pub fn new(max_bytes: usize) -> ResultCache {
        ResultCache {
            max_bytes,
            bytes: 0,
            tick: 0,
            slots: HashMap::new(),
            evictions: 0,
        }
    }

    /// Look up a result, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<CachedResult> {
        self.tick += 1;
        let tick = self.tick;
        self.slots.get_mut(&key).map(|slot| {
            slot.tick = tick;
            slot.value.clone()
        })
    }

    /// Insert a result for `key` over `input`, evicting
    /// least-recently-used entries until it fits. An entry larger than
    /// the whole budget is not cached at all.
    pub fn insert(&mut self, key: u64, input: &Path, value: CachedResult) {
        let cost = value.cost();
        if cost > self.max_bytes {
            return;
        }
        if let Some(old) = self.slots.remove(&key) {
            self.bytes -= old.cost;
        }
        while self.bytes + cost > self.max_bytes {
            let Some((&lru, _)) = self.slots.iter().min_by_key(|(_, s)| s.tick) else {
                break;
            };
            let evicted = self.slots.remove(&lru).expect("lru key present");
            self.bytes -= evicted.cost;
            self.evictions += 1;
        }
        self.tick += 1;
        self.bytes += cost;
        self.slots.insert(
            key,
            CacheSlot {
                input: input.to_path_buf(),
                cost,
                tick: self.tick,
                value,
            },
        );
    }

    /// Drop every entry computed over `input` (the file was
    /// regenerated). Returns how many entries were dropped.
    pub fn invalidate_input(&mut self, input: &Path) -> usize {
        let doomed: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.input == input)
            .map(|(&k, _)| k)
            .collect();
        for k in &doomed {
            let slot = self.slots.remove(k).expect("doomed key present");
            self.bytes -= slot.cost;
        }
        doomed.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current total entry cost in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries evicted by the size bound since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str, pad: usize) -> CachedResult {
        CachedResult {
            plan: tag.to_string(),
            applied: vec![],
            combiner: None,
            output_hex: vec![("ab".repeat(pad / 2).to_string(), String::new())],
        }
    }

    #[test]
    fn hit_miss_and_cost_accounting() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(1).is_none());
        let r = result("plan", 100);
        c.insert(1, Path::new("/a"), r.clone());
        assert_eq!(c.get(1), Some(r.clone()));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), r.cost());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // Budget fits two ~100-byte entries, not three.
        let mut c = ResultCache::new(260);
        c.insert(1, Path::new("/a"), result("one!", 100));
        c.insert(2, Path::new("/a"), result("two!", 100));
        c.get(1); // 1 is now fresher than 2
        c.insert(3, Path::new("/a"), result("tri!", 100));
        assert!(c.get(2).is_none(), "LRU entry 2 evicted");
        assert!(c.get(1).is_some(), "recently-used entry 1 kept");
        assert!(c.get(3).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = ResultCache::new(64);
        c.insert(1, Path::new("/a"), result("huge", 1000));
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_cost() {
        let mut c = ResultCache::new(1024);
        c.insert(1, Path::new("/a"), result("v1", 100));
        c.insert(1, Path::new("/a"), result("v2", 200));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), c.get(1).unwrap().cost());
    }

    #[test]
    fn invalidation_drops_exactly_the_inputs_entries() {
        let mut c = ResultCache::new(4096);
        c.insert(1, Path::new("/a"), result("a1", 50));
        c.insert(2, Path::new("/a"), result("a2", 50));
        c.insert(3, Path::new("/b"), result("b1", 50));
        assert_eq!(c.invalidate_input(Path::new("/a")), 2);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some(), "other inputs untouched");
        assert_eq!(c.invalidate_input(Path::new("/missing")), 0);
    }
}
