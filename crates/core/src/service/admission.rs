//! Admission control: a bounded FIFO queue in front of a fixed number
//! of job slots.
//!
//! Every submission first tries to enter the queue; a full queue is a
//! *typed* rejection ([`Rejection`]) rather than an error string, so
//! overload is a protocol outcome clients can react to. Queued
//! submissions block (FIFO — tickets are monotonically numbered and
//! only the head may take a slot) until one of the `max_running` slots
//! frees. The slot is an RAII guard: dropping it — normally or by
//! panic — releases the slot and wakes the queue head.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use super::proto::Rejection;
use super::ServiceStats;

/// The FIFO admission controller.
#[derive(Debug)]
pub struct Admission {
    max_running: usize,
    queue_cap: usize,
    state: Mutex<AdmState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct AdmState {
    running: usize,
    /// Tickets of submissions waiting for a slot, oldest first.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// The outcome of [`Admission::admit`].
pub enum Admit<'a> {
    /// A slot is held; run the job, then drop the guard.
    Granted(SlotGuard<'a>),
    /// The queue was full; the payload is the typed rejection.
    Rejected(Rejection),
}

/// RAII job slot: releases on drop and wakes the queue.
pub struct SlotGuard<'a> {
    adm: &'a Admission,
}

impl Admission {
    /// A controller with `max_running` concurrent job slots and a
    /// waiting queue bounded at `queue_cap`.
    pub fn new(max_running: usize, queue_cap: usize) -> Admission {
        Admission {
            max_running: max_running.max(1),
            queue_cap,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    /// Enter admission: reject immediately if the queue is full,
    /// otherwise wait (FIFO) for a slot. Counters: `queued` increments
    /// on every enqueue, `admitted` when a slot is granted, `rejected`
    /// on overload.
    pub fn admit(&self, stats: &ServiceStats) -> Admit<'_> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // The bound applies to jobs that would *wait*: with a free slot
        // and an empty queue the submission runs immediately, so even
        // `queue_cap == 0` admits an idle-daemon job.
        if st.running >= self.max_running && st.queue.len() >= self.queue_cap {
            stats.rejected.bump();
            return Admit::Rejected(Rejection {
                queued: st.queue.len() as u64,
                queue_cap: self.queue_cap as u64,
                running: st.running as u64,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        stats.queued.bump();
        while st.queue.front() != Some(&ticket) || st.running >= self.max_running {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.queue.pop_front();
        st.running += 1;
        stats.admitted.bump();
        Admit::Granted(SlotGuard { adm: self })
    }

    /// Jobs currently holding a slot.
    pub fn running(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).running
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().unwrap_or_else(|e| e.into_inner());
        st.running -= 1;
        drop(st);
        // Wake everyone: only the queue head can proceed, but a single
        // notify could land on a non-head waiter and stall the queue.
        self.adm.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn overload_is_a_typed_rejection() {
        let adm = Admission::new(1, 0);
        let stats = ServiceStats::default();
        let _slot = match adm.admit(&stats) {
            Admit::Granted(g) => g,
            Admit::Rejected(r) => panic!("first job rejected: {r}"),
        };
        // Slot busy and the queue holds zero: the next submission must
        // bounce with live occupancy numbers.
        match adm.admit(&stats) {
            Admit::Rejected(r) => {
                assert_eq!(r.queue_cap, 0);
                assert_eq!(r.running, 1);
            }
            Admit::Granted(_) => panic!("queue_cap 0 must reject when busy"),
        }
        assert_eq!(stats.rejected.get(), 1);
        assert_eq!(stats.admitted.get(), 1);
    }

    #[test]
    fn slots_bound_concurrency_and_queue_drains_fifo() {
        let adm = Arc::new(Admission::new(2, 64));
        let stats = Arc::new(ServiceStats::default());
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let (adm, stats, peak, live, order) = (
                    Arc::clone(&adm),
                    Arc::clone(&stats),
                    Arc::clone(&peak),
                    Arc::clone(&live),
                    Arc::clone(&order),
                );
                scope.spawn(move || {
                    let Admit::Granted(_slot) = adm.admit(&stats) else {
                        panic!("queue 64 must not reject 8 jobs");
                    };
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    order.lock().unwrap().push(i);
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "max_running=2 exceeded");
        assert_eq!(stats.admitted.get(), 8);
        assert_eq!(stats.queued.get(), 8);
        assert_eq!(order.lock().unwrap().len(), 8);
        assert_eq!(adm.running(), 0);
        assert_eq!(adm.queued(), 0);
    }

    #[test]
    fn released_slot_admits_the_waiter() {
        let adm = Arc::new(Admission::new(1, 4));
        let stats = Arc::new(ServiceStats::default());
        let Admit::Granted(slot) = adm.admit(&stats) else {
            panic!("empty controller rejected")
        };
        let waiter = {
            let (adm, stats) = (Arc::clone(&adm), Arc::clone(&stats));
            std::thread::spawn(move || match adm.admit(&stats) {
                Admit::Granted(_g) => true,
                Admit::Rejected(_) => false,
            })
        };
        // Give the waiter time to enqueue, then free the slot.
        while adm.queued() == 0 {
            std::thread::yield_now();
        }
        drop(slot);
        assert!(waiter.join().unwrap(), "waiter should be admitted");
    }
}
