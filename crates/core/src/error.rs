//! Top-level Manimal errors.

use std::fmt;

/// Any failure in the Manimal pipeline.
#[derive(Debug)]
pub enum ManimalError {
    /// Storage-layer failure.
    Storage(mr_storage::StorageError),
    /// Execution-fabric failure.
    Engine(mr_engine::EngineError),
    /// Catalog corruption or serialization failure.
    Catalog(String),
    /// Index generation failed.
    IndexGen(String),
    /// The optimizer was asked for an impossible plan.
    Plan(String),
    /// Job-service failure (protocol, admission, or daemon state).
    Service(String),
    /// I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ManimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManimalError::Storage(e) => write!(f, "storage: {e}"),
            ManimalError::Engine(e) => write!(f, "engine: {e}"),
            ManimalError::Catalog(e) => write!(f, "catalog: {e}"),
            ManimalError::IndexGen(e) => write!(f, "index generation: {e}"),
            ManimalError::Plan(e) => write!(f, "planning: {e}"),
            ManimalError::Service(e) => write!(f, "service: {e}"),
            ManimalError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ManimalError {}

impl From<mr_storage::StorageError> for ManimalError {
    fn from(e: mr_storage::StorageError) -> Self {
        ManimalError::Storage(e)
    }
}

impl From<mr_engine::EngineError> for ManimalError {
    fn from(e: mr_engine::EngineError) -> Self {
        ManimalError::Engine(e)
    }
}

impl From<std::io::Error> for ManimalError {
    fn from(e: std::io::Error) -> Self {
        ManimalError::Io(e)
    }
}

/// Manimal result alias.
pub type Result<T> = std::result::Result<T, ManimalError>;
