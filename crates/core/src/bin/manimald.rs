//! `manimald` — the Manimal job daemon.
//!
//! ```text
//! manimald SOCKET [--work DIR] [--max-running N] [--queue-cap N]
//!                 [--cache-bytes BYTES]
//! ```
//!
//! One daemon owns one catalog, one buffer pool, and one dictionary
//! store; clients (`manimal submit --remote`, the bench harness) speak
//! the frame protocol of `manimal::service::proto` over the Unix
//! socket. The process runs in the foreground until a client sends a
//! shutdown frame, then drains in-flight jobs and exits, printing its
//! final counters.

use std::process::ExitCode;

use manimal::service::{serve_blocking, ServiceConfig};

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let socket = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| {
            let pos = args.iter().position(|b| b == *a).expect("present");
            pos == 0 || !args[pos - 1].starts_with("--")
        })
        .ok_or("usage: manimald SOCKET [--work DIR] [--max-running N] [--queue-cap N] [--cache-bytes BYTES]")?;
    let mut cfg = ServiceConfig::new(
        socket,
        flag_value(args, "--work").unwrap_or("manimald-work"),
    );
    cfg.max_running = parse_num(args, "--max-running", cfg.max_running)?.max(1);
    cfg.queue_cap = parse_num(args, "--queue-cap", cfg.queue_cap)?;
    cfg.cache_bytes = parse_num(args, "--cache-bytes", cfg.cache_bytes)?;
    eprintln!(
        "manimald: listening on {} (work {}, {} slots, queue {}, cache {} bytes)",
        cfg.socket.display(),
        cfg.workdir.display(),
        cfg.max_running,
        cfg.queue_cap,
        cfg.cache_bytes
    );
    let stats = serve_blocking(cfg).map_err(|e| e.to_string())?;
    eprintln!("manimald: shut down cleanly; final counters:\n{stats}");
    Ok(())
}

fn main() -> ExitCode {
    // The process backend re-execs this binary as a task-protocol
    // worker when a client asks for process execution; never returns in
    // that role.
    mr_engine::maybe_worker_entry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
