//! `manimal` — the command-line interface to the whole pipeline.
//!
//! ```text
//! manimal generate webpages  OUT.seq [--pages N] [--content BYTES]
//! manimal generate uservisits OUT.seq [--visits N] [--pages N]
//! manimal cat     DATA.seq  [--limit N]           # dump records
//! manimal analyze PROG.mrasm DATA.seq             # Step 1: the analyzer
//! manimal build   PROG.mrasm DATA.seq [--work DIR]# run index-gen programs
//! manimal run     PROG.mrasm DATA.seq [--work DIR] [--reducer sum|count|…]
//!                 [--reduce-ir REDUCE.mrasm]      # IR reduce (combine pass runs)
//!                 [--baseline] [--safe-mode]      # Steps 2+3
//!                 [--shuffle-buffer BYTES]        # external shuffle budget
//!                 [--shuffle-codec CODEC]         # compress spill runs
//!                 [--spill-writer-threads N]      # background spill writers (0 = inline)
//!                 [--no-combine]                  # disable map-side combining
//!                 [--max-task-attempts N]         # task-level retries
//!                 [--fault-spec SPEC]             # deterministic fault drill
//! manimal serve   SOCKET [--work DIR]             # run the job daemon
//! manimal submit  PROG.mrasm DATA.seq --remote SOCKET  # run via a daemon
//! ```
//!
//! The program file is MR-IR assembly (see `mr_ir::asm`); the input's
//! schema travels in the sequence-file header, so nothing else needs to
//! be declared — exactly the paper's submission interface.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use manimal::{choose_join_plan, Builtin, FaultPlan, Manimal, ShuffleCompression};
use mr_engine::BackendSpec;
use mr_ir::asm::parse_function;
use mr_ir::Program;
use mr_storage::fault::IoSite;
use mr_storage::seqfile::SeqFileMeta;
use mr_workloads::data::{
    generate_rankings, generate_uservisits, generate_webpages, UserVisitsConfig, WebPagesConfig,
};
use mr_workloads::pavlo;

fn main() -> ExitCode {
    // The process backend re-execs this binary as a task-protocol
    // worker (`manimal __mr-worker <socket> <id>`); never returns in
    // that role.
    mr_engine::maybe_worker_entry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = it.collect();
    match cmd {
        "generate" => generate(&rest),
        "cat" => cat(&rest),
        "analyze" => analyze_cmd(&rest),
        "build" => build(&rest),
        "run" => run_cmd(&rest),
        "join" => join_cmd(&rest),
        "serve" => serve_cmd(&rest),
        "submit" => submit_cmd(&rest),
        "stats" => stats_cmd(&rest),
        "shutdown" => shutdown_cmd(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `manimal help`")),
    }
}

const HELP: &str = "\
manimal — automatic optimization for MapReduce programs

  manimal generate webpages   OUT.seq [--pages N] [--content BYTES] [--codec C]
                              [--notify SOCKET]
  manimal generate uservisits OUT.seq [--visits N] [--pages N] [--codec C]
                              [--notify SOCKET]
  manimal generate rankings   OUT.seq [--pages N] [--seed N]
  manimal cat     DATA.seq  [--limit N]
  manimal analyze PROG.mrasm DATA.seq
  manimal build   PROG.mrasm DATA.seq [--work DIR]
  manimal run     PROG.mrasm DATA.seq [--work DIR] [--reducer R]
                  [--reduce-ir REDUCE.mrasm]
                  [--baseline] [--safe-mode] [--shuffle-buffer BYTES]
                  [--shuffle-codec none|raw|dict|delta|dict-trained]
                  [--spill-writer-threads N]
                  [--no-combine] [--no-dict-train] [--max-task-attempts N]
                  [--fault-spec SPEC]
                  [--backend local|process|process:N]
  manimal join    RANKINGS.seq USERVISITS.seq [--work DIR]
                  [--join-plan auto|broadcast|repartition]
                  [--broadcast-budget BYTES]
                  [--date-lo EPOCH] [--date-hi EPOCH]
                  [--dag]                 # 2-stage pipeline: filter+index, then join
                  [--shuffle-buffer BYTES] [--shuffle-codec CODEC]
                  [--max-task-attempts N] [--fault-spec SPEC]
                  [--backend local|process|process:N]
  manimal serve   SOCKET [--work DIR] [--max-running N] [--queue-cap N]
                  [--cache-bytes BYTES]
  manimal submit  PROG.mrasm DATA.seq --remote SOCKET [--reducer R]
                  [--reduce-ir REDUCE.mrasm] [--baseline] [--build]
  manimal stats   SOCKET                  # daemon counter snapshot
  manimal shutdown SOCKET                 # drain in-flight jobs and exit

codecs: --shuffle-codec block-compresses spill runs (dict = LZW
dictionary frames, delta = stride-delta frames, raw = CRC framing
only, dict-trained = LZW seeded from a dictionary trained on the
job's own map output and stored content-addressed under
WORK/dicts for cross-job reuse); --no-dict-train downgrades
dict-trained to the static dict codec (no training pass, no
artifacts); --codec on generate writes the block-compressed seqfile
variant. Output is byte-identical under every codec.

shuffle: --shuffle-buffer caps the resident shuffle and spills the
excess to sorted runs; --spill-writer-threads N overlaps run writing
with mapping (default 1 = double-buffered, 0 = write inline on the
map thread). Output is identical for every thread count.

reducers: sum, count, max, min, identity, first, sum-drop-key
(sum/count/max/min/sum-drop-key declare map-side combiners, engaged
automatically; --reduce-ir runs a compiled IR reduce(key, values)
instead, with the analyzer proving — or declining — its combiner;
--no-combine keeps the shuffle pipeline plain)

fault drills: --max-task-attempts N lets each map/reduce task run up
to N times before the job fails; --fault-spec injects a deterministic
failure schedule, e.g. `map:0:0:5,reduce:1:0:0,io:run-read:3`
(fail map task 0 attempt 0 at record 5, reduce partition 1 attempt 0
immediately, and the 3rd run-file read; IO sites: run-read, run-write,
seq-read, seq-write, block-read, block-write; process sites: kill:W:N
SIGKILLs worker W at its N-th assignment, slow:W:MS makes worker W a
deterministic straggler — both need --backend process)

backends: --backend local (default) runs the job in-process on scoped
threads; --backend process[:N] forks N worker processes (default 2)
driven over a Unix-socket task protocol, with byte-identical output.
Contradictory knob combinations (a fault site the other knobs make
unreachable, process faults on the local backend, a worker id past the
worker count) are rejected before anything runs.

joins: `manimal join` runs the Pavlo Benchmark-3 equijoin
(Rankings ⋈ UserVisits on URL, with --date-lo/--date-hi filtering the
visits side). --join-plan auto (default) broadcasts the rankings side
when its file fits --broadcast-budget (64 MiB default) and falls back
to a repartition join of tagged-union values otherwise; both plans
produce byte-identical output. --dag runs it as a two-stage JobDag:
stage 1 filters the visits and builds its recommended indexes, stage 2
plans the probe side against the catalog and *reuses* those indexes
instead of rebuilding them (the run report counts builds vs. reuses).

daemon: `manimal serve` (or the standalone `manimald` binary) runs a
long-lived job service on a Unix socket — one shared catalog and
buffer pool, FIFO admission with typed overload rejections, in-flight
index-build dedup, and a size-bounded LRU result cache. `manimal
submit --remote SOCKET` runs a program through it (--build asks the
daemon to build recommended indexes first); `manimal generate
--notify SOCKET` tells a running daemon the file was regenerated, so
its stale catalog entries and cached results are dropped.
";

/// A knob combination `manimal run` rejects before running anything —
/// typed so the rejection table is testable, rendered for the user via
/// `Display`.
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// Two flags contradict each other: honoring both is impossible,
    /// and silently ignoring one would make a drill pass vacuously.
    Conflict {
        /// The flag (with its value) being rejected.
        flag: String,
        /// The flag it collides with.
        against: String,
        /// Why the combination cannot work.
        why: String,
    },
    /// A malformed flag value.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Conflict { flag, against, why } => {
                write!(f, "`{flag}` contradicts `{against}`: {why}")
            }
            CliError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

fn conflict(flag: &str, against: &str, why: &str) -> CliError {
    CliError::Conflict {
        flag: flag.into(),
        against: against.into(),
        why: why.into(),
    }
}

/// The `manimal run` knobs that can contradict each other.
struct RunKnobs<'a> {
    shuffle_buffer: Option<usize>,
    codec: ShuffleCompression,
    spill_writer_threads: usize,
    backend: &'a BackendSpec,
    fault: Option<&'a FaultPlan>,
}

/// The rejection table: every fault site named by `--fault-spec` must
/// be reachable under the other knobs, or the drill would "pass" while
/// injecting nothing. Checked before any work runs.
fn validate_run_knobs(knobs: &RunKnobs<'_>) -> Result<(), CliError> {
    let Some(fault) = knobs.fault else {
        return Ok(());
    };
    for site in fault.io_sites() {
        let spilling = matches!(
            site,
            IoSite::RunRead | IoSite::RunWrite | IoSite::BlockRead | IoSite::BlockWrite
        );
        if spilling && knobs.shuffle_buffer.is_none() {
            return Err(conflict(
                &format!("--fault-spec io:{}:…", site.name()),
                "(no --shuffle-buffer)",
                "run and block sites only exist on the spill path; set a shuffle budget",
            ));
        }
        if matches!(site, IoSite::BlockRead | IoSite::BlockWrite)
            && knobs.codec == ShuffleCompression::None
        {
            return Err(conflict(
                &format!("--fault-spec io:{}:…", site.name()),
                "--shuffle-codec none",
                "block sites fire per compressed frame; pick a codec",
            ));
        }
        if matches!(site, IoSite::RunWrite | IoSite::BlockWrite) && knobs.spill_writer_threads == 0
        {
            return Err(conflict(
                &format!("--fault-spec io:{}:…", site.name()),
                "--spill-writer-threads 0",
                "writer sites target the background spill writers; inline spilling has none",
            ));
        }
    }
    match knobs.backend {
        BackendSpec::Local => {
            if fault.has_process_faults() {
                return Err(conflict(
                    "--fault-spec kill:/slow:",
                    "--backend local",
                    "process faults kill or slow worker processes; the local backend has none",
                ));
            }
        }
        BackendSpec::Process(cfg) => {
            // Worker ids are 0-based and monotonic: the initial fleet is
            // 0..workers, and each kill respawns at most one replacement
            // with the next fresh id — anything past that bound can
            // never exist.
            let reachable = cfg.workers as u64 + fault.kill_count();
            if let Some(max) = fault.max_process_worker() {
                if (max as u64) >= reachable {
                    return Err(conflict(
                        &format!("--fault-spec naming worker {max}"),
                        &format!("--backend process:{}", cfg.workers),
                        &format!(
                            "only worker ids below {reachable} (workers + kills) can ever exist"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

fn parse_backend(rest: &[&String]) -> Result<BackendSpec, CliError> {
    match flag_value(rest, "--backend") {
        None => Ok(BackendSpec::Local),
        Some(v) => BackendSpec::parse(v).map_err(|e| CliError::Usage(format!("--backend: {e}"))),
    }
}

fn flag_value<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| *a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn flag_present(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| *a == name)
}

fn positional<'a>(rest: &'a [&String], idx: usize) -> Result<&'a str, String> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip values that follow a --flag.
            let pos = rest.iter().position(|b| b == *a).expect("present");
            pos == 0 || !rest[pos - 1].starts_with("--")
        })
        .nth(idx)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing positional argument #{}", idx + 1))
}

fn parse_num(rest: &[&String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(rest, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn parse_codec(rest: &[&String], name: &str) -> Result<ShuffleCompression, String> {
    match flag_value(rest, name) {
        None => Ok(ShuffleCompression::None),
        Some(v) => ShuffleCompression::parse(v).ok_or_else(|| {
            format!("{name}: unknown codec `{v}` (none|raw|dict|delta|dict-trained)")
        }),
    }
}

fn generate(rest: &[&String]) -> Result<(), String> {
    let kind = positional(rest, 0)?;
    let out = positional(rest, 1)?;
    let codec = parse_codec(rest, "--codec")?;
    match kind {
        "webpages" => {
            let cfg = WebPagesConfig {
                pages: parse_num(rest, "--pages", 10_000)?,
                content_size: parse_num(rest, "--content", 510)?,
                codec,
                ..WebPagesConfig::default()
            };
            let n = generate_webpages(out, &cfg).map_err(|e| e.to_string())?;
            println!("wrote {n} WebPages records to {out}");
        }
        "uservisits" => {
            let cfg = UserVisitsConfig {
                visits: parse_num(rest, "--visits", 50_000)?,
                pages: parse_num(rest, "--pages", 10_000)?,
                codec,
                ..UserVisitsConfig::default()
            };
            let n = generate_uservisits(out, &cfg).map_err(|e| e.to_string())?;
            println!("wrote {n} UserVisits records to {out}");
        }
        "rankings" => {
            let pages = parse_num(rest, "--pages", 10_000)?;
            let n = generate_rankings(out, pages, false, parse_num(rest, "--seed", 13)? as u64)
                .map_err(|e| e.to_string())?;
            println!("wrote {n} Rankings records to {out}");
        }
        other => {
            return Err(format!(
                "unknown dataset `{other}` (webpages|uservisits|rankings)"
            ))
        }
    }
    // A regenerated file invalidates every index and cached result a
    // running daemon holds for it; --notify keeps the daemon honest.
    if let Some(socket) = flag_value(rest, "--notify") {
        let input = absolute(out);
        let mut client = manimal::ServiceClient::connect(socket).map_err(|e| e.to_string())?;
        let dropped = client.invalidate(&input).map_err(|e| e.to_string())?;
        eprintln!(
            "notified daemon at {socket}: {dropped} cached result(s) dropped for {}",
            input.display()
        );
    }
    Ok(())
}

/// Resolve a client-side path for the daemon's namespace: canonical
/// when the file exists (so every client names it identically), made
/// absolute against the cwd otherwise.
fn absolute(path: &str) -> PathBuf {
    std::fs::canonicalize(path).unwrap_or_else(|_| {
        let p = Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            std::env::current_dir()
                .unwrap_or_else(|_| PathBuf::from("."))
                .join(p)
        }
    })
}

fn cat(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0)?;
    let limit = parse_num(rest, "--limit", 10)?;
    let meta = SeqFileMeta::open(path).map_err(|e| e.to_string())?;
    println!(
        "# {} — {} records, {} bytes, schema {}",
        path, meta.record_count, meta.file_size, meta.schema
    );
    for (i, rec) in meta
        .read_all()
        .map_err(|e| e.to_string())?
        .take(limit)
        .enumerate()
    {
        println!("{i}: {}", rec.map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn load_program(prog_path: &str, input: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(prog_path).map_err(|e| format!("read {prog_path}: {e}"))?;
    let func = parse_function(&src).map_err(|e| format!("{prog_path}: {e}"))?;
    mr_ir::verify::verify(&func).map_err(|errs| {
        let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
        format!("{prog_path} failed verification:\n{}", lines.join("\n"))
    })?;
    let meta = SeqFileMeta::open(input).map_err(|e| e.to_string())?;
    let name = Path::new(prog_path)
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "program".to_string());
    Ok(Program::new(name, func, Arc::clone(&meta.schema)))
}

fn workdir(rest: &[&String], input: &str) -> PathBuf {
    flag_value(rest, "--work")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(input)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .join("manimal-work")
        })
}

fn analyze_cmd(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    let manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    let submission = manimal.submit(&program, input);
    print!("{}", submission.report);
    if submission.index_programs.is_empty() {
        println!("no index programs recommended");
    } else {
        println!("recommended index-generation programs:");
        for p in &submission.index_programs {
            println!("  {p}");
        }
    }
    Ok(())
}

fn build(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    let manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    let submission = manimal.submit(&program, input);
    let entries = manimal
        .build_indexes(&submission)
        .map_err(|e| e.to_string())?;
    if entries.is_empty() {
        println!("nothing to build");
    }
    for e in &entries {
        println!(
            "built {}: {} ({} bytes, {:.1}% of input)",
            e.kind,
            e.index_path.display(),
            e.index_bytes,
            e.space_overhead() * 100.0
        );
    }
    Ok(())
}

fn reducer_of(name: &str) -> Result<Builtin, String> {
    Ok(match name {
        "sum" => Builtin::Sum,
        "count" => Builtin::Count,
        "max" => Builtin::Max,
        "min" => Builtin::Min,
        "identity" => Builtin::Identity,
        "first" => Builtin::First,
        "sum-drop-key" => Builtin::SumDropKey,
        other => return Err(format!("unknown reducer `{other}`")),
    })
}

fn run_cmd(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    // The reduce side: a builtin by name, or a compiled IR reduce whose
    // combiner-safety the analyzer proves (Step 1 for reduce()).
    let reducer: Arc<dyn mr_engine::ReducerFactory> =
        if let Some(reduce_path) = flag_value(rest, "--reduce-ir") {
            let src = std::fs::read_to_string(reduce_path)
                .map_err(|e| format!("read {reduce_path}: {e}"))?;
            let func = parse_function(&src).map_err(|e| format!("{reduce_path}: {e}"))?;
            mr_ir::verify::verify(&func).map_err(|errs| {
                let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
                format!("{reduce_path} failed verification:\n{}", lines.join("\n"))
            })?;
            let (factory, outcome) = manimal::ir_reducer(func, &program);
            eprintln!("reduce analysis: {outcome}");
            factory
        } else {
            Arc::new(reducer_of(
                flag_value(rest, "--reducer").unwrap_or("count"),
            )?)
        };
    let mut manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    manimal.optimizer.safe_mode = flag_present(rest, "--safe-mode");
    manimal.optimizer.no_combine = flag_present(rest, "--no-combine");
    manimal.optimizer.no_dict_train = flag_present(rest, "--no-dict-train");
    if let Some(bytes) = flag_value(rest, "--shuffle-buffer") {
        manimal.shuffle_buffer_bytes = Some(
            bytes
                .parse::<usize>()
                .map_err(|_| format!("--shuffle-buffer: `{bytes}` is not a byte count"))?,
        );
    }
    manimal.shuffle_compression = parse_codec(rest, "--shuffle-codec")?;
    manimal.spill_writer_threads = parse_num(rest, "--spill-writer-threads", 1)?;
    manimal.max_task_attempts = parse_num(rest, "--max-task-attempts", 1)?.max(1);
    manimal.backend = parse_backend(rest).map_err(|e| e.to_string())?;
    if let Some(spec) = flag_value(rest, "--fault-spec") {
        let plan = manimal::FaultPlan::from_spec(spec).map_err(|e| format!("--fault-spec: {e}"))?;
        eprintln!(
            "fault plan: {plan} (tasks may run up to {} attempts)",
            manimal.max_task_attempts
        );
        manimal.fault_plan = Some(Arc::new(plan));
    }
    validate_run_knobs(&RunKnobs {
        shuffle_buffer: manimal.shuffle_buffer_bytes,
        codec: manimal.shuffle_compression,
        spill_writer_threads: manimal.spill_writer_threads,
        backend: &manimal.backend,
        fault: manimal.fault_plan.as_deref(),
    })
    .map_err(|e| e.to_string())?;
    let submission = manimal.submit(&program, input);

    let execution = if flag_present(rest, "--baseline") {
        manimal
            .execute_baseline(&submission, reducer)
            .map_err(|e| e.to_string())?
    } else {
        manimal
            .execute(&submission, reducer)
            .map_err(|e| e.to_string())?
    };
    eprintln!("plan: {}", execution.descriptor_summary);
    if let Some(name) = execution.combiner {
        eprintln!("combiner: {name} (map-side)");
    }
    eprintln!(
        "elapsed: {:?}; {}",
        execution.result.elapsed, execution.result.counters
    );
    if let Some(ratio) = execution.result.compression_ratio() {
        eprintln!(
            "spill compression: {ratio:.4}x ({} of {} raw bytes written)",
            execution.result.counters.spill_bytes_written,
            execution.result.counters.spill_bytes_raw,
        );
    }
    for (k, v) in execution.result.output.iter().take(50) {
        println!("{k}\t{v}");
    }
    let extra = execution.result.output.len().saturating_sub(50);
    if extra > 0 {
        println!("… {extra} more rows");
    }
    Ok(())
}

/// `manimal join RANKINGS USERVISITS` — the Pavlo Benchmark-3 equijoin
/// on the tagged-union join fabric, either as a single job or (with
/// `--dag`) as a two-stage [`manimal::JobDag`] whose join stage reuses
/// the indexes stage 1 registered.
fn join_cmd(rest: &[&String]) -> Result<(), String> {
    let rankings = positional(rest, 0)?;
    let visits = positional(rest, 1)?;
    let force = match flag_value(rest, "--join-plan") {
        None | Some("auto") => None,
        Some(v) => Some(manimal::JoinPlan::parse(v).ok_or_else(|| {
            format!("--join-plan: unknown plan `{v}` (auto|broadcast|repartition)")
        })?),
    };
    let budget = parse_num(
        rest,
        "--broadcast-budget",
        manimal::DEFAULT_BROADCAST_BUDGET as usize,
    )? as u64;
    // Default window: the full uniform date range of the generators, so
    // freshly generated smoke data joins every visit; narrow it with
    // --date-lo/--date-hi (the paper's 0.095% selectivity needs a real
    // dataset to leave anything behind).
    let defaults = UserVisitsConfig::default();
    let date_lo = parse_num(rest, "--date-lo", defaults.date_start as usize)? as i64;
    let date_hi = parse_num(rest, "--date-hi", defaults.date_end as usize)? as i64;

    let mut manimal = Manimal::new(workdir(rest, rankings)).map_err(|e| e.to_string())?;
    if let Some(bytes) = flag_value(rest, "--shuffle-buffer") {
        manimal.shuffle_buffer_bytes = Some(
            bytes
                .parse::<usize>()
                .map_err(|_| format!("--shuffle-buffer: `{bytes}` is not a byte count"))?,
        );
    }
    manimal.shuffle_compression = parse_codec(rest, "--shuffle-codec")?;
    manimal.spill_writer_threads = parse_num(rest, "--spill-writer-threads", 1)?;
    manimal.max_task_attempts = parse_num(rest, "--max-task-attempts", 1)?.max(1);
    manimal.backend = parse_backend(rest).map_err(|e| e.to_string())?;
    if let Some(spec) = flag_value(rest, "--fault-spec") {
        let plan = manimal::FaultPlan::from_spec(spec).map_err(|e| format!("--fault-spec: {e}"))?;
        manimal.fault_plan = Some(Arc::new(plan));
    }
    validate_run_knobs(&RunKnobs {
        shuffle_buffer: manimal.shuffle_buffer_bytes,
        codec: manimal.shuffle_compression,
        spill_writer_threads: manimal.spill_writer_threads,
        backend: &manimal.backend,
        fault: manimal.fault_plan.as_deref(),
    })
    .map_err(|e| e.to_string())?;

    let rankings_prog = pavlo::benchmark3_rankings_mapper();
    let visits_prog = pavlo::benchmark3_visits_mapper(date_lo, date_hi);

    if flag_present(rest, "--dag") {
        let dag = manimal::JobDag {
            name: "bench3".into(),
            stages: vec![
                manimal::DagStage {
                    name: "filter-visits".into(),
                    job: manimal::StageJob::Map {
                        input: manimal::DagInput::Path(PathBuf::from(visits)),
                        program: visits_prog.clone(),
                        reducer: Arc::new(Builtin::Identity),
                        build_index: true,
                    },
                },
                manimal::DagStage {
                    name: "join".into(),
                    job: manimal::StageJob::Join {
                        build: manimal::DagInput::Path(PathBuf::from(rankings)),
                        build_mapper: rankings_prog,
                        probe: manimal::DagInput::Path(PathBuf::from(visits)),
                        probe_mapper: visits_prog,
                        plan: force,
                        broadcast_budget: budget,
                        index_probe: true,
                    },
                },
            ],
        };
        let run = manimal.execute_dag(&dag).map_err(|e| e.to_string())?;
        for stage in &run.stages {
            eprintln!(
                "stage {}: {}{} ({} rows)",
                stage.name,
                stage.summary,
                if stage.cached { " [cached]" } else { "" },
                stage.rows
            );
        }
        eprintln!(
            "index builds: {} new, {} reused from the catalog",
            run.index_builds, run.index_builds_reused
        );
        let rows = run
            .stages
            .last()
            .and_then(|s| s.result.as_ref())
            .map(|r| r.output.as_slice())
            .unwrap_or(&[]);
        print_rows(rows);
        return Ok(());
    }

    let decision =
        choose_join_plan(Path::new(rankings), budget, force).map_err(|e| e.to_string())?;
    eprintln!("join plan: {decision}");
    let join = manimal::JoinJob {
        name: "bench3-join".into(),
        build: mr_engine::InputSpec::SeqFile {
            path: PathBuf::from(rankings),
        },
        build_mapper: rankings_prog.mapper,
        probe: mr_engine::InputSpec::SeqFile {
            path: PathBuf::from(visits),
        },
        probe_mapper: visits_prog.mapper,
        plan: decision.plan,
    };
    let execution = manimal.execute_join(&join).map_err(|e| e.to_string())?;
    eprintln!(
        "elapsed: {:?}; {}",
        execution.result.elapsed, execution.result.counters
    );
    print_rows(&execution.result.output);
    Ok(())
}

fn print_rows(rows: &[(mr_ir::Value, mr_ir::Value)]) {
    for (k, v) in rows.iter().take(50) {
        println!("{k}\t{v}");
    }
    let extra = rows.len().saturating_sub(50);
    if extra > 0 {
        println!("… {extra} more rows");
    }
}

fn serve_cmd(rest: &[&String]) -> Result<(), String> {
    let socket = positional(rest, 0)?;
    let mut cfg = manimal::ServiceConfig::new(
        socket,
        flag_value(rest, "--work").unwrap_or("manimald-work"),
    );
    cfg.max_running = parse_num(rest, "--max-running", cfg.max_running)?.max(1);
    cfg.queue_cap = parse_num(rest, "--queue-cap", cfg.queue_cap)?;
    cfg.cache_bytes = parse_num(rest, "--cache-bytes", cfg.cache_bytes)?;
    eprintln!(
        "manimal serve: listening on {} (work {}, {} slots, queue {}, cache {} bytes)",
        cfg.socket.display(),
        cfg.workdir.display(),
        cfg.max_running,
        cfg.queue_cap,
        cfg.cache_bytes
    );
    let stats = manimal::serve_blocking(cfg).map_err(|e| e.to_string())?;
    eprintln!("manimal serve: shut down cleanly; final counters:\n{stats}");
    Ok(())
}

fn submit_cmd(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let socket = flag_value(rest, "--remote")
        .ok_or("submit needs --remote SOCKET (for local execution use `manimal run`)")?;
    let program_asm =
        std::fs::read_to_string(prog_path).map_err(|e| format!("read {prog_path}: {e}"))?;
    let reduce_ir = match flag_value(rest, "--reduce-ir") {
        Some(path) => Some(std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?),
        None => None,
    };
    let name = Path::new(prog_path)
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "program".to_string());
    let req = manimal::service::proto::JobRequest {
        name,
        program_asm,
        input: absolute(input),
        reducer: flag_value(rest, "--reducer").unwrap_or("count").to_string(),
        reduce_ir,
        build_indexes: flag_present(rest, "--build"),
        baseline: flag_present(rest, "--baseline"),
    };
    let mut client = manimal::ServiceClient::connect(socket).map_err(|e| e.to_string())?;
    let reply = match client.submit(&req).map_err(|e| e.to_string())? {
        manimal::SubmitOutcome::Completed(reply) => reply,
        manimal::SubmitOutcome::Rejected(r) => return Err(r.to_string()),
    };
    eprintln!("plan: {}", reply.plan);
    if let Some(name) = &reply.combiner {
        eprintln!("combiner: {name} (map-side)");
    }
    if reply.cache_hit {
        eprintln!("served from the daemon's result cache");
    }
    if reply.deduped_builds > 0 {
        eprintln!(
            "waited out {} in-flight index build(s) instead of duplicating them",
            reply.deduped_builds
        );
    }
    let output = reply.decode_output().map_err(|e| e.to_string())?;
    for (k, v) in output.iter().take(50) {
        println!("{k}\t{v}");
    }
    let extra = output.len().saturating_sub(50);
    if extra > 0 {
        println!("… {extra} more rows");
    }
    Ok(())
}

fn stats_cmd(rest: &[&String]) -> Result<(), String> {
    let socket = positional(rest, 0)?;
    let mut client = manimal::ServiceClient::connect(socket).map_err(|e| e.to_string())?;
    print!("{}", client.stats().map_err(|e| e.to_string())?);
    Ok(())
}

fn shutdown_cmd(rest: &[&String]) -> Result<(), String> {
    let socket = positional(rest, 0)?;
    let mut client = manimal::ServiceClient::connect(socket).map_err(|e| e.to_string())?;
    client.shutdown().map_err(|e| e.to_string())?;
    eprintln!("daemon at {socket} acknowledged shutdown; draining in-flight jobs");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_engine::ProcessCfg;

    fn knobs<'a>(fault: Option<&'a FaultPlan>, backend: &'a BackendSpec) -> RunKnobs<'a> {
        RunKnobs {
            shuffle_buffer: Some(1024),
            codec: ShuffleCompression::None,
            spill_writer_threads: 1,
            backend,
            fault,
        }
    }

    fn process(workers: usize) -> BackendSpec {
        BackendSpec::Process(ProcessCfg {
            workers,
            worker_cmd: None,
            speculate: false,
        })
    }

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::from_spec(spec).unwrap()
    }

    #[test]
    fn fault_free_knobs_always_validate() {
        let backend = BackendSpec::Local;
        let mut k = knobs(None, &backend);
        k.shuffle_buffer = None;
        k.spill_writer_threads = 0;
        assert_eq!(validate_run_knobs(&k), Ok(()));
    }

    #[test]
    fn writer_site_faults_reject_inline_spilling() {
        let backend = BackendSpec::Local;
        for spec in ["io:run-write:0", "io:block-write:2"] {
            let fault = plan(spec);
            let mut k = knobs(Some(&fault), &backend);
            k.spill_writer_threads = 0;
            k.codec = ShuffleCompression::Raw;
            let err = validate_run_knobs(&k).unwrap_err();
            assert!(
                matches!(&err, CliError::Conflict { against, .. }
                    if against == "--spill-writer-threads 0"),
                "{spec}: {err}"
            );
        }
        // Read-side sites are fine without writer threads.
        let fault = plan("io:run-read:0");
        let mut k = knobs(Some(&fault), &backend);
        k.spill_writer_threads = 0;
        assert_eq!(validate_run_knobs(&k), Ok(()));
    }

    #[test]
    fn spill_path_sites_require_a_shuffle_budget() {
        let backend = BackendSpec::Local;
        for spec in [
            "io:run-read:0",
            "io:run-write:0",
            "io:block-read:0",
            "io:block-write:0",
        ] {
            let fault = plan(spec);
            let mut k = knobs(Some(&fault), &backend);
            k.shuffle_buffer = None;
            k.codec = ShuffleCompression::Raw;
            let err = validate_run_knobs(&k).unwrap_err();
            assert!(
                matches!(&err, CliError::Conflict { against, .. }
                    if against == "(no --shuffle-buffer)"),
                "{spec}: {err}"
            );
        }
        // Seq sites live on the map-input path; no budget needed.
        let fault = plan("io:seq-read:5");
        let mut k = knobs(Some(&fault), &backend);
        k.shuffle_buffer = None;
        assert_eq!(validate_run_knobs(&k), Ok(()));
    }

    #[test]
    fn block_sites_require_a_codec() {
        let backend = BackendSpec::Local;
        for spec in ["io:block-read:0", "io:block-write:0"] {
            let fault = plan(spec);
            let k = knobs(Some(&fault), &backend);
            let err = validate_run_knobs(&k).unwrap_err();
            assert!(
                matches!(&err, CliError::Conflict { against, .. }
                    if against == "--shuffle-codec none"),
                "{spec}: {err}"
            );
        }
        let fault = plan("io:block-read:0");
        let mut k = knobs(Some(&fault), &backend);
        k.codec = ShuffleCompression::Dict;
        assert_eq!(validate_run_knobs(&k), Ok(()));
    }

    #[test]
    fn process_faults_reject_the_local_backend() {
        let backend = BackendSpec::Local;
        for spec in ["kill:0:0", "slow:1:50", "map:0:0:5,kill:0:1"] {
            let fault = plan(spec);
            let err = validate_run_knobs(&knobs(Some(&fault), &backend)).unwrap_err();
            assert!(
                matches!(&err, CliError::Conflict { against, .. }
                    if against == "--backend local"),
                "{spec}: {err}"
            );
        }
    }

    #[test]
    fn unreachable_worker_ids_are_rejected() {
        // process:2 with no kills: ids 0 and 1 exist, 2 never will.
        let backend = process(2);
        let fault = plan("slow:2:50");
        let err = validate_run_knobs(&knobs(Some(&fault), &backend)).unwrap_err();
        assert!(matches!(&err, CliError::Conflict { .. }), "{err}");
        // One kill makes the respawned id 2 reachable.
        let fault = plan("kill:0:0,slow:2:50");
        assert_eq!(validate_run_knobs(&knobs(Some(&fault), &backend)), Ok(()));
        // …but id 3 still is not.
        let fault = plan("kill:0:0,slow:3:50");
        let err = validate_run_knobs(&knobs(Some(&fault), &backend)).unwrap_err();
        assert!(matches!(&err, CliError::Conflict { .. }), "{err}");
    }

    #[test]
    fn record_level_faults_validate_on_both_backends() {
        let fault = plan("map:0:0:5,reduce:1:0:0");
        for backend in [BackendSpec::Local, process(2)] {
            assert_eq!(validate_run_knobs(&knobs(Some(&fault), &backend)), Ok(()));
        }
    }

    #[test]
    fn backend_flag_parses_and_rejects() {
        fn args(v: &[String]) -> Vec<&String> {
            v.iter().collect()
        }
        let none: Vec<String> = vec![];
        assert_eq!(parse_backend(&args(&none)).unwrap(), BackendSpec::Local);
        let flag = vec!["--backend".to_string(), "process:3".to_string()];
        match parse_backend(&args(&flag)).unwrap() {
            BackendSpec::Process(cfg) => assert_eq!(cfg.workers, 3),
            other => panic!("expected process backend, got {other:?}"),
        }
        let bad = vec!["--backend".to_string(), "cluster".to_string()];
        let err = parse_backend(&args(&bad)).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }
}
