//! `manimal` — the command-line interface to the whole pipeline.
//!
//! ```text
//! manimal generate webpages  OUT.seq [--pages N] [--content BYTES]
//! manimal generate uservisits OUT.seq [--visits N] [--pages N]
//! manimal cat     DATA.seq  [--limit N]           # dump records
//! manimal analyze PROG.mrasm DATA.seq             # Step 1: the analyzer
//! manimal build   PROG.mrasm DATA.seq [--work DIR]# run index-gen programs
//! manimal run     PROG.mrasm DATA.seq [--work DIR] [--reducer sum|count|…]
//!                 [--reduce-ir REDUCE.mrasm]      # IR reduce (combine pass runs)
//!                 [--baseline] [--safe-mode]      # Steps 2+3
//!                 [--shuffle-buffer BYTES]        # external shuffle budget
//!                 [--shuffle-codec CODEC]         # compress spill runs
//!                 [--spill-writer-threads N]      # background spill writers (0 = inline)
//!                 [--no-combine]                  # disable map-side combining
//!                 [--max-task-attempts N]         # task-level retries
//!                 [--fault-spec SPEC]             # deterministic fault drill
//! ```
//!
//! The program file is MR-IR assembly (see `mr_ir::asm`); the input's
//! schema travels in the sequence-file header, so nothing else needs to
//! be declared — exactly the paper's submission interface.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use manimal::{Builtin, Manimal, ShuffleCompression};
use mr_ir::asm::parse_function;
use mr_ir::Program;
use mr_storage::seqfile::SeqFileMeta;
use mr_workloads::data::{
    generate_uservisits, generate_webpages, UserVisitsConfig, WebPagesConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = it.collect();
    match cmd {
        "generate" => generate(&rest),
        "cat" => cat(&rest),
        "analyze" => analyze_cmd(&rest),
        "build" => build(&rest),
        "run" => run_cmd(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `manimal help`")),
    }
}

const HELP: &str = "\
manimal — automatic optimization for MapReduce programs

  manimal generate webpages   OUT.seq [--pages N] [--content BYTES] [--codec C]
  manimal generate uservisits OUT.seq [--visits N] [--pages N] [--codec C]
  manimal cat     DATA.seq  [--limit N]
  manimal analyze PROG.mrasm DATA.seq
  manimal build   PROG.mrasm DATA.seq [--work DIR]
  manimal run     PROG.mrasm DATA.seq [--work DIR] [--reducer R]
                  [--reduce-ir REDUCE.mrasm]
                  [--baseline] [--safe-mode] [--shuffle-buffer BYTES]
                  [--shuffle-codec none|raw|dict|delta]
                  [--spill-writer-threads N]
                  [--no-combine] [--max-task-attempts N]
                  [--fault-spec SPEC]

codecs: --shuffle-codec block-compresses spill runs (dict = LZW
dictionary frames, delta = stride-delta frames, raw = CRC framing
only); --codec on generate writes the block-compressed seqfile
variant. Output is byte-identical under every codec.

shuffle: --shuffle-buffer caps the resident shuffle and spills the
excess to sorted runs; --spill-writer-threads N overlaps run writing
with mapping (default 1 = double-buffered, 0 = write inline on the
map thread). Output is identical for every thread count.

reducers: sum, count, max, min, identity, first, sum-drop-key
(sum/count/max/min/sum-drop-key declare map-side combiners, engaged
automatically; --reduce-ir runs a compiled IR reduce(key, values)
instead, with the analyzer proving — or declining — its combiner;
--no-combine keeps the shuffle pipeline plain)

fault drills: --max-task-attempts N lets each map/reduce task run up
to N times before the job fails; --fault-spec injects a deterministic
failure schedule, e.g. `map:0:0:5,reduce:1:0:0,io:run-read:3`
(fail map task 0 attempt 0 at record 5, reduce partition 1 attempt 0
immediately, and the 3rd run-file read; IO sites: run-read, run-write,
seq-read, seq-write, block-read, block-write)
";

fn flag_value<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| *a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn flag_present(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| *a == name)
}

fn positional<'a>(rest: &'a [&String], idx: usize) -> Result<&'a str, String> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip values that follow a --flag.
            let pos = rest.iter().position(|b| b == *a).expect("present");
            pos == 0 || !rest[pos - 1].starts_with("--")
        })
        .nth(idx)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing positional argument #{}", idx + 1))
}

fn parse_num(rest: &[&String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(rest, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn parse_codec(rest: &[&String], name: &str) -> Result<ShuffleCompression, String> {
    match flag_value(rest, name) {
        None => Ok(ShuffleCompression::None),
        Some(v) => ShuffleCompression::parse(v)
            .ok_or_else(|| format!("{name}: unknown codec `{v}` (none|raw|dict|delta)")),
    }
}

fn generate(rest: &[&String]) -> Result<(), String> {
    let kind = positional(rest, 0)?;
    let out = positional(rest, 1)?;
    let codec = parse_codec(rest, "--codec")?;
    match kind {
        "webpages" => {
            let cfg = WebPagesConfig {
                pages: parse_num(rest, "--pages", 10_000)?,
                content_size: parse_num(rest, "--content", 510)?,
                codec,
                ..WebPagesConfig::default()
            };
            let n = generate_webpages(out, &cfg).map_err(|e| e.to_string())?;
            println!("wrote {n} WebPages records to {out}");
        }
        "uservisits" => {
            let cfg = UserVisitsConfig {
                visits: parse_num(rest, "--visits", 50_000)?,
                pages: parse_num(rest, "--pages", 10_000)?,
                codec,
                ..UserVisitsConfig::default()
            };
            let n = generate_uservisits(out, &cfg).map_err(|e| e.to_string())?;
            println!("wrote {n} UserVisits records to {out}");
        }
        other => return Err(format!("unknown dataset `{other}` (webpages|uservisits)")),
    }
    Ok(())
}

fn cat(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0)?;
    let limit = parse_num(rest, "--limit", 10)?;
    let meta = SeqFileMeta::open(path).map_err(|e| e.to_string())?;
    println!(
        "# {} — {} records, {} bytes, schema {}",
        path, meta.record_count, meta.file_size, meta.schema
    );
    for (i, rec) in meta
        .read_all()
        .map_err(|e| e.to_string())?
        .take(limit)
        .enumerate()
    {
        println!("{i}: {}", rec.map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn load_program(prog_path: &str, input: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(prog_path).map_err(|e| format!("read {prog_path}: {e}"))?;
    let func = parse_function(&src).map_err(|e| format!("{prog_path}: {e}"))?;
    mr_ir::verify::verify(&func).map_err(|errs| {
        let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
        format!("{prog_path} failed verification:\n{}", lines.join("\n"))
    })?;
    let meta = SeqFileMeta::open(input).map_err(|e| e.to_string())?;
    let name = Path::new(prog_path)
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "program".to_string());
    Ok(Program::new(name, func, Arc::clone(&meta.schema)))
}

fn workdir(rest: &[&String], input: &str) -> PathBuf {
    flag_value(rest, "--work")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(input)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .join("manimal-work")
        })
}

fn analyze_cmd(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    let manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    let submission = manimal.submit(&program, input);
    print!("{}", submission.report);
    if submission.index_programs.is_empty() {
        println!("no index programs recommended");
    } else {
        println!("recommended index-generation programs:");
        for p in &submission.index_programs {
            println!("  {p}");
        }
    }
    Ok(())
}

fn build(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    let manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    let submission = manimal.submit(&program, input);
    let entries = manimal
        .build_indexes(&submission)
        .map_err(|e| e.to_string())?;
    if entries.is_empty() {
        println!("nothing to build");
    }
    for e in &entries {
        println!(
            "built {}: {} ({} bytes, {:.1}% of input)",
            e.kind,
            e.index_path.display(),
            e.index_bytes,
            e.space_overhead() * 100.0
        );
    }
    Ok(())
}

fn reducer_of(name: &str) -> Result<Builtin, String> {
    Ok(match name {
        "sum" => Builtin::Sum,
        "count" => Builtin::Count,
        "max" => Builtin::Max,
        "min" => Builtin::Min,
        "identity" => Builtin::Identity,
        "first" => Builtin::First,
        "sum-drop-key" => Builtin::SumDropKey,
        other => return Err(format!("unknown reducer `{other}`")),
    })
}

fn run_cmd(rest: &[&String]) -> Result<(), String> {
    let prog_path = positional(rest, 0)?;
    let input = positional(rest, 1)?;
    let program = load_program(prog_path, input)?;
    // The reduce side: a builtin by name, or a compiled IR reduce whose
    // combiner-safety the analyzer proves (Step 1 for reduce()).
    let reducer: Arc<dyn mr_engine::ReducerFactory> =
        if let Some(reduce_path) = flag_value(rest, "--reduce-ir") {
            let src = std::fs::read_to_string(reduce_path)
                .map_err(|e| format!("read {reduce_path}: {e}"))?;
            let func = parse_function(&src).map_err(|e| format!("{reduce_path}: {e}"))?;
            mr_ir::verify::verify(&func).map_err(|errs| {
                let lines: Vec<String> = errs.iter().map(|e| format!("  {e}")).collect();
                format!("{reduce_path} failed verification:\n{}", lines.join("\n"))
            })?;
            let (factory, outcome) = manimal::ir_reducer(func, &program);
            eprintln!("reduce analysis: {outcome}");
            factory
        } else {
            Arc::new(reducer_of(
                flag_value(rest, "--reducer").unwrap_or("count"),
            )?)
        };
    let mut manimal = Manimal::new(workdir(rest, input)).map_err(|e| e.to_string())?;
    manimal.optimizer.safe_mode = flag_present(rest, "--safe-mode");
    manimal.optimizer.no_combine = flag_present(rest, "--no-combine");
    if let Some(bytes) = flag_value(rest, "--shuffle-buffer") {
        manimal.shuffle_buffer_bytes = Some(
            bytes
                .parse::<usize>()
                .map_err(|_| format!("--shuffle-buffer: `{bytes}` is not a byte count"))?,
        );
    }
    manimal.shuffle_compression = parse_codec(rest, "--shuffle-codec")?;
    manimal.spill_writer_threads = parse_num(rest, "--spill-writer-threads", 1)?;
    manimal.max_task_attempts = parse_num(rest, "--max-task-attempts", 1)?.max(1);
    if let Some(spec) = flag_value(rest, "--fault-spec") {
        let plan = manimal::FaultPlan::from_spec(spec).map_err(|e| format!("--fault-spec: {e}"))?;
        eprintln!(
            "fault plan: {plan} (tasks may run up to {} attempts)",
            manimal.max_task_attempts
        );
        manimal.fault_plan = Some(Arc::new(plan));
    }
    let submission = manimal.submit(&program, input);

    let execution = if flag_present(rest, "--baseline") {
        manimal
            .execute_baseline(&submission, reducer)
            .map_err(|e| e.to_string())?
    } else {
        manimal
            .execute(&submission, reducer)
            .map_err(|e| e.to_string())?
    };
    eprintln!("plan: {}", execution.descriptor_summary);
    if let Some(name) = execution.combiner {
        eprintln!("combiner: {name} (map-side)");
    }
    eprintln!(
        "elapsed: {:?}; {}",
        execution.result.elapsed, execution.result.counters
    );
    for (k, v) in execution.result.output.iter().take(50) {
        println!("{k}\t{v}");
    }
    let extra = execution.result.output.len().saturating_sub(50);
    if extra > 0 {
        println!("… {extra} more rows");
    }
    Ok(())
}
