//! The Manimal catalog (paper Fig. 1).
//!
//! "The optimizer uses this descriptor, plus a catalog of precomputed
//! indexes, to choose an optimized execution plan. … Each run of an
//! index generation program is tracked in the filesystem catalog."
//!
//! The catalog is a durable JSON file mapping input files to the index
//! artifacts built for them, with enough metadata (index kind, key
//! expression, fields) for the optimizer to match a new program's
//! optimization descriptors against existing indexes.
//!
//! Durability discipline: every write lands in a tmp file in the
//! catalog's own directory and renames over `catalog.json`, so a crash
//! (even `kill -9` mid-write) leaves the old or the new state on disk,
//! never a torn file. Every mutation runs under an advisory `flock` on
//! a sibling `catalog.json.lock` and re-reads the on-disk state before
//! applying itself, so concurrent writers — threads with their own
//! `Catalog` instances, or whole separate processes (`manimald` plus a
//! CLI run) — merge instead of clobbering each other's entries. The
//! kernel drops the flock when its holder dies, so a killed writer
//! cannot wedge the catalog.

use std::path::{Path, PathBuf};

use mr_json::Json;
use parking_lot::Mutex;

use mr_ir::value::Value;
use mr_storage::btree::ScanBound;
use mr_storage::rowcodec::{decode_value, encode_value};

use crate::error::{ManimalError, Result};

/// A serializable scan bound: values are hex-encoded through the
/// self-describing value codec so the catalog stays a plain JSON file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundRepr {
    /// Unbounded.
    Open,
    /// Inclusive bound (hex-encoded value).
    Incl(String),
    /// Exclusive bound (hex-encoded value).
    Excl(String),
}

/// A serializable key range covered by a selection index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRepr {
    /// Lower bound.
    pub low: BoundRepr,
    /// Upper bound.
    pub high: BoundRepr,
}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

impl BoundRepr {
    /// Encode a scan bound.
    pub fn from_bound(b: &ScanBound) -> Result<BoundRepr> {
        let enc = |v: &Value| -> Result<String> {
            let mut buf = Vec::new();
            encode_value(v, &mut buf)?;
            Ok(hex_encode(&buf))
        };
        Ok(match b {
            ScanBound::Unbounded => BoundRepr::Open,
            ScanBound::Incl(v) => BoundRepr::Incl(enc(v)?),
            ScanBound::Excl(v) => BoundRepr::Excl(enc(v)?),
        })
    }

    /// Decode back to a scan bound.
    pub fn to_bound(&self) -> Result<ScanBound> {
        let dec = |s: &str| -> Result<Value> {
            let bytes =
                hex_decode(s).ok_or_else(|| ManimalError::Catalog("bad hex in catalog".into()))?;
            Ok(decode_value(&bytes)?.0)
        };
        Ok(match self {
            BoundRepr::Open => ScanBound::Unbounded,
            BoundRepr::Incl(s) => ScanBound::Incl(dec(s)?),
            BoundRepr::Excl(s) => ScanBound::Excl(dec(s)?),
        })
    }
}

impl RangeRepr {
    /// Encode a `(low, high)` scan range.
    pub fn from_bounds(low: &ScanBound, high: &ScanBound) -> Result<RangeRepr> {
        Ok(RangeRepr {
            low: BoundRepr::from_bound(low)?,
            high: BoundRepr::from_bound(high)?,
        })
    }

    /// Decode back to `(low, high)`.
    pub fn to_bounds(&self) -> Result<(ScanBound, ScanBound)> {
        Ok((self.low.to_bound()?, self.high.to_bound()?))
    }
}

/// What kind of physical artifact an index file is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexKind {
    /// A clustered B+Tree on `key` (the display form of the index-key
    /// expression), materializing only the records whose key falls in
    /// `covered` — "a description of a view on the data from the user's
    /// input file, which is materialized by the index generation
    /// program" (paper §2.2). `projected_fields` is `Some` for a
    /// combined selection+projection index that stores only the used
    /// fields.
    Selection {
        /// Display form of the indexed expression, e.g. `value.rank`.
        key: String,
        /// Key ranges the view materializes. A later program may use
        /// this index only if its own ranges are contained in these.
        covered: Vec<RangeRepr>,
        /// Stored fields for a combined selection+projection index.
        projected_fields: Option<Vec<String>>,
    },
    /// A projected sequence file keeping only `fields`.
    Projection {
        /// Kept fields, in schema order.
        fields: Vec<String>,
    },
    /// A delta-compressed file on the named integer fields;
    /// `projected` is `Some` when the file also drops unused fields
    /// (the combined projection+delta artifact of Pavlo Benchmark 2).
    Delta {
        /// Delta-encoded fields.
        fields: Vec<String>,
        /// Kept fields for a combined projection+delta artifact.
        projected: Option<Vec<String>>,
    },
    /// A dictionary-compressed file on the named string fields.
    Dict {
        /// Compressed fields.
        fields: Vec<String>,
    },
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKind::Selection {
                key,
                covered,
                projected_fields,
            } => {
                write!(f, "selection B+Tree on {key}")?;
                if let Some(fields) = projected_fields {
                    write!(f, " storing [{}]", fields.join(", "))?;
                }
                if !covered.is_empty() {
                    let ranges: Vec<String> = covered
                        .iter()
                        .filter_map(|r| r.to_bounds().ok())
                        .map(|(lo, hi)| {
                            let side = |b: &ScanBound, open: &str, incl: char, excl: char| match b {
                                ScanBound::Unbounded => open.to_string(),
                                ScanBound::Incl(v) => format!("{incl}{v}"),
                                ScanBound::Excl(v) => format!("{excl}{v}"),
                            };
                            format!(
                                "{}, {}",
                                side(&lo, "(-inf", '[', '('),
                                match &hi {
                                    ScanBound::Unbounded => "+inf)".to_string(),
                                    ScanBound::Incl(v) => format!("{v}]"),
                                    ScanBound::Excl(v) => format!("{v})"),
                                }
                            )
                        })
                        .collect();
                    write!(f, " covering {}", ranges.join(" ∪ "))?;
                }
                Ok(())
            }
            IndexKind::Projection { fields } => {
                write!(f, "projected file [{}]", fields.join(", "))
            }
            IndexKind::Delta { fields, projected } => {
                write!(f, "delta file on [{}]", fields.join(", "))?;
                if let Some(kept) = projected {
                    write!(f, " keeping [{}]", kept.join(", "))?;
                }
                Ok(())
            }
            IndexKind::Dict { fields } => {
                write!(f, "dictionary file on [{}]", fields.join(", "))
            }
        }
    }
}

/// One catalog entry: an index built over an input file.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The original input file.
    pub input_path: PathBuf,
    /// The index artifact.
    pub index_path: PathBuf,
    /// What the artifact is.
    pub kind: IndexKind,
    /// Artifact size in bytes (the "space overhead" column of Table 2).
    pub index_bytes: u64,
    /// Original input size in bytes, for overhead reporting.
    pub input_bytes: u64,
}

impl CatalogEntry {
    /// Space overhead relative to the input, as a fraction.
    pub fn space_overhead(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            self.index_bytes as f64 / self.input_bytes as f64
        }
    }
}

#[derive(Debug, Default)]
struct CatalogFile {
    entries: Vec<CatalogEntry>,
}

// ---------------------------------------------------------------------
// JSON codecs. Hand-written against `mr_json` (the build environment
// has no registry access for serde), but byte-compatible with serde's
// externally-tagged representation of these types so existing catalog
// files keep working if the workspace later moves to real serde.

fn decode_err(what: &str) -> ManimalError {
    ManimalError::Catalog(format!("catalog decode: {what}"))
}

fn field<'j>(j: &'j Json, key: &str) -> Result<&'j Json> {
    j.get(key)
        .ok_or_else(|| decode_err(&format!("missing field `{key}`")))
}

fn string_field(j: &Json, key: &str) -> Result<String> {
    Ok(field(j, key)?
        .as_str()
        .ok_or_else(|| decode_err(&format!("field `{key}` is not a string")))?
        .to_string())
}

fn string_array(j: &Json, what: &str) -> Result<Vec<String>> {
    j.as_arr()
        .ok_or_else(|| decode_err(&format!("{what} is not an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| decode_err(&format!("{what} element is not a string")))
        })
        .collect()
}

fn opt_string_array(j: &Json, key: &str) -> Result<Option<Vec<String>>> {
    match field(j, key)? {
        Json::Null => Ok(None),
        v => Ok(Some(string_array(v, key)?)),
    }
}

fn variant<'j>(j: &'j Json, what: &str) -> Result<(&'j str, &'j Json)> {
    match j.as_obj() {
        Some([(tag, payload)]) => Ok((tag.as_str(), payload)),
        _ => Err(decode_err(&format!(
            "{what} is not a single-variant object"
        ))),
    }
}

impl BoundRepr {
    fn to_json(&self) -> Json {
        match self {
            BoundRepr::Open => Json::str("Open"),
            BoundRepr::Incl(s) => Json::obj([("Incl", Json::str(s.clone()))]),
            BoundRepr::Excl(s) => Json::obj([("Excl", Json::str(s.clone()))]),
        }
    }

    fn from_json(j: &Json) -> Result<BoundRepr> {
        if j.as_str() == Some("Open") {
            return Ok(BoundRepr::Open);
        }
        let (tag, payload) = variant(j, "bound")?;
        let hex = payload
            .as_str()
            .ok_or_else(|| decode_err("bound payload is not a string"))?
            .to_string();
        match tag {
            "Incl" => Ok(BoundRepr::Incl(hex)),
            "Excl" => Ok(BoundRepr::Excl(hex)),
            other => Err(decode_err(&format!("unknown bound variant `{other}`"))),
        }
    }
}

impl RangeRepr {
    /// Encode as a JSON value (used by the catalog file).
    pub fn to_json(&self) -> Json {
        Json::obj([("low", self.low.to_json()), ("high", self.high.to_json())])
    }

    /// Decode from a JSON value.
    pub fn from_json(j: &Json) -> Result<RangeRepr> {
        Ok(RangeRepr {
            low: BoundRepr::from_json(field(j, "low")?)?,
            high: BoundRepr::from_json(field(j, "high")?)?,
        })
    }
}

fn fields_json(fields: &[String]) -> Json {
    Json::Arr(fields.iter().map(Json::str).collect())
}

fn opt_fields_json(fields: &Option<Vec<String>>) -> Json {
    match fields {
        None => Json::Null,
        Some(fs) => fields_json(fs),
    }
}

fn path_json(path: &Path, what: &str) -> Result<Json> {
    path.to_str()
        .map(Json::str)
        .ok_or_else(|| ManimalError::Catalog(format!("{what} contains invalid UTF-8: {path:?}")))
}

impl IndexKind {
    fn to_json(&self) -> Json {
        match self {
            IndexKind::Selection {
                key,
                covered,
                projected_fields,
            } => Json::obj([(
                "Selection",
                Json::obj([
                    ("key", Json::str(key.clone())),
                    (
                        "covered",
                        Json::Arr(covered.iter().map(RangeRepr::to_json).collect()),
                    ),
                    ("projected_fields", opt_fields_json(projected_fields)),
                ]),
            )]),
            IndexKind::Projection { fields } => {
                Json::obj([("Projection", Json::obj([("fields", fields_json(fields))]))])
            }
            IndexKind::Delta { fields, projected } => Json::obj([(
                "Delta",
                Json::obj([
                    ("fields", fields_json(fields)),
                    ("projected", opt_fields_json(projected)),
                ]),
            )]),
            IndexKind::Dict { fields } => {
                Json::obj([("Dict", Json::obj([("fields", fields_json(fields))]))])
            }
        }
    }

    fn from_json(j: &Json) -> Result<IndexKind> {
        let (tag, payload) = variant(j, "index kind")?;
        match tag {
            "Selection" => Ok(IndexKind::Selection {
                key: string_field(payload, "key")?,
                covered: field(payload, "covered")?
                    .as_arr()
                    .ok_or_else(|| decode_err("`covered` is not an array"))?
                    .iter()
                    .map(RangeRepr::from_json)
                    .collect::<Result<Vec<_>>>()?,
                projected_fields: opt_string_array(payload, "projected_fields")?,
            }),
            "Projection" => Ok(IndexKind::Projection {
                fields: string_array(field(payload, "fields")?, "fields")?,
            }),
            "Delta" => Ok(IndexKind::Delta {
                fields: string_array(field(payload, "fields")?, "fields")?,
                projected: opt_string_array(payload, "projected")?,
            }),
            "Dict" => Ok(IndexKind::Dict {
                fields: string_array(field(payload, "fields")?, "fields")?,
            }),
            other => Err(decode_err(&format!("unknown index kind `{other}`"))),
        }
    }
}

impl CatalogEntry {
    fn to_json(&self) -> Result<Json> {
        Ok(Json::obj([
            ("input_path", path_json(&self.input_path, "input path")?),
            ("index_path", path_json(&self.index_path, "index path")?),
            ("kind", self.kind.to_json()),
            ("index_bytes", Json::Int(self.index_bytes as i64)),
            ("input_bytes", Json::Int(self.input_bytes as i64)),
        ]))
    }

    fn from_json(j: &Json) -> Result<CatalogEntry> {
        let bytes = |key: &str| -> Result<u64> {
            field(j, key)?
                .as_u64()
                .ok_or_else(|| decode_err(&format!("field `{key}` is not a byte count")))
        };
        Ok(CatalogEntry {
            input_path: PathBuf::from(string_field(j, "input_path")?),
            index_path: PathBuf::from(string_field(j, "index_path")?),
            kind: IndexKind::from_json(field(j, "kind")?)?,
            index_bytes: bytes("index_bytes")?,
            input_bytes: bytes("input_bytes")?,
        })
    }
}

impl CatalogFile {
    fn to_json(&self) -> Result<Json> {
        Ok(Json::obj([(
            "entries",
            Json::Arr(
                self.entries
                    .iter()
                    .map(CatalogEntry::to_json)
                    .collect::<Result<Vec<_>>>()?,
            ),
        )]))
    }

    fn from_json(j: &Json) -> Result<CatalogFile> {
        Ok(CatalogFile {
            entries: field(j, "entries")?
                .as_arr()
                .ok_or_else(|| decode_err("`entries` is not an array"))?
                .iter()
                .map(CatalogEntry::from_json)
                .collect::<Result<Vec<_>>>()?,
        })
    }

    fn parse(text: &str) -> Result<CatalogFile> {
        let value = mr_json::parse(text)
            .map_err(|e| ManimalError::Catalog(format!("catalog parse: {e}")))?;
        CatalogFile::from_json(&value)
    }
}

/// An exclusive advisory file lock (`flock(2)`) held for the duration
/// of one catalog mutation. Advisory locks are released by the kernel
/// when the holding process dies — including `kill -9` — so a crashed
/// writer can never wedge the catalog the way a lockfile would.
///
/// The workspace has no `libc` crate (externals are vendored shims), but
/// every Rust binary on Unix already links the platform libc, so the
/// one symbol needed is declared directly.
#[derive(Debug)]
struct FileLock {
    file: std::fs::File,
}

extern "C" {
    fn flock(fd: std::os::raw::c_int, operation: std::os::raw::c_int) -> std::os::raw::c_int;
}

const LOCK_EX: std::os::raw::c_int = 2;
const LOCK_UN: std::os::raw::c_int = 8;

impl FileLock {
    /// Block until the exclusive lock on `path` is held.
    fn acquire(path: &Path) -> std::io::Result<FileLock> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        loop {
            if unsafe { flock(file.as_raw_fd(), LOCK_EX) } == 0 {
                return Ok(FileLock { file });
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        use std::os::unix::io::AsRawFd;
        unsafe { flock(self.file.as_raw_fd(), LOCK_UN) };
    }
}

/// The filesystem catalog.
#[derive(Debug)]
pub struct Catalog {
    path: PathBuf,
    inner: Mutex<CatalogFile>,
}

impl Catalog {
    /// Open (or create) the catalog at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Catalog> {
        let path = path.as_ref().to_path_buf();
        let inner = if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            match CatalogFile::parse(&text) {
                Ok(parsed) => parsed,
                Err(e) => {
                    // A stale or corrupt catalog (e.g. written by an
                    // older format) must not brick the system: move it
                    // aside and start fresh, like Hadoop ignoring a bad
                    // metadata file. The rename itself must not fail
                    // silently — if the bad file cannot be moved aside,
                    // a fresh save would clobber the evidence and the
                    // next open would hit the same corruption.
                    let backup = path.with_extension("json.corrupt");
                    std::fs::rename(&path, &backup).map_err(|rename_err| {
                        ManimalError::Catalog(format!(
                            "unreadable catalog {} ({e}); backing it up to {} also failed: \
                             {rename_err}",
                            path.display(),
                            backup.display()
                        ))
                    })?;
                    eprintln!(
                        "warning: unreadable catalog {} ({e}); moved to {} and starting fresh",
                        path.display(),
                        backup.display()
                    );
                    CatalogFile::default()
                }
            }
        } else {
            CatalogFile::default()
        };
        Ok(Catalog {
            path,
            inner: Mutex::new(inner),
        })
    }

    /// The sibling lock-file path guarding mutations of this catalog.
    fn lock_path(&self) -> PathBuf {
        self.path.with_extension("json.lock")
    }

    /// Run one mutation under the advisory file lock: re-read the
    /// on-disk truth (another process or instance may have written
    /// since we loaded), apply `mutate`, and persist atomically. The
    /// refreshed, merged state also becomes this instance's in-memory
    /// view.
    fn mutate(&self, mutate: impl FnOnce(&mut Vec<CatalogEntry>)) -> Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let _flock = FileLock::acquire(&self.lock_path())?;
        let mut inner = self.inner.lock();
        if self.path.exists() {
            let text = std::fs::read_to_string(&self.path)?;
            *inner = CatalogFile::parse(&text)?;
        }
        mutate(&mut inner.entries);
        self.save_locked(&inner)
    }

    /// Register an index, replacing any previous entry with the same
    /// input path and kind, and persist.
    pub fn register(&self, entry: CatalogEntry) -> Result<()> {
        self.mutate(|entries| {
            entries.retain(|e| !(e.input_path == entry.input_path && e.kind == entry.kind));
            entries.push(entry);
        })
    }

    /// All indexes registered for an input file.
    pub fn indexes_for(&self, input: &Path) -> Vec<CatalogEntry> {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| e.input_path == input)
            .cloned()
            .collect()
    }

    /// Every entry.
    pub fn entries(&self) -> Vec<CatalogEntry> {
        self.inner.lock().entries.clone()
    }

    /// Drop all entries for an input (e.g. after the file changed).
    pub fn invalidate(&self, input: &Path) -> Result<()> {
        self.mutate(|entries| entries.retain(|e| e.input_path != input))
    }

    /// Persist atomically: write a tmp file in the catalog's own
    /// directory (same filesystem, so the rename cannot cross devices)
    /// and rename it over `catalog.json` — the commit-by-rename
    /// discipline the rest of the repo uses for artifacts. A crash at
    /// any point leaves the old or the new state, never a torn file.
    /// Callers hold the advisory lock, so the fixed tmp name is safe.
    fn save_locked(&self, inner: &CatalogFile) -> Result<()> {
        let text = inner.to_json()?.to_string_pretty();
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("manimal-catalog-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.json", std::process::id()))
    }

    fn entry(input: &str, kind: IndexKind) -> CatalogEntry {
        CatalogEntry {
            input_path: PathBuf::from(input),
            index_path: PathBuf::from(format!("{input}.idx")),
            kind,
            index_bytes: 100,
            input_bytes: 1000,
        }
    }

    #[test]
    fn register_persist_reload() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let cat = Catalog::open(&path).unwrap();
        cat.register(entry(
            "/data/logs.seq",
            IndexKind::Selection {
                key: "value.rank".into(),
                covered: vec![RangeRepr {
                    low: BoundRepr::Open,
                    high: BoundRepr::Open,
                }],
                projected_fields: None,
            },
        ))
        .unwrap();
        cat.register(entry(
            "/data/logs.seq",
            IndexKind::Projection {
                fields: vec!["url".into()],
            },
        ))
        .unwrap();

        let reopened = Catalog::open(&path).unwrap();
        let found = reopened.indexes_for(Path::new("/data/logs.seq"));
        assert_eq!(found.len(), 2);
        assert!(reopened
            .indexes_for(Path::new("/data/other.seq"))
            .is_empty());
    }

    #[test]
    fn register_replaces_same_kind() {
        let path = tmp("replace");
        let _ = std::fs::remove_file(&path);
        let cat = Catalog::open(&path).unwrap();
        let kind = IndexKind::Delta {
            fields: vec!["ts".into()],
            projected: None,
        };
        cat.register(entry("/a", kind.clone())).unwrap();
        let mut second = entry("/a", kind);
        second.index_bytes = 999;
        cat.register(second).unwrap();
        let found = cat.indexes_for(Path::new("/a"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].index_bytes, 999);
    }

    #[test]
    fn invalidate_removes_everything_for_input() {
        let path = tmp("invalidate");
        let _ = std::fs::remove_file(&path);
        let cat = Catalog::open(&path).unwrap();
        cat.register(entry(
            "/a",
            IndexKind::Dict {
                fields: vec!["u".into()],
            },
        ))
        .unwrap();
        cat.register(entry(
            "/b",
            IndexKind::Dict {
                fields: vec!["u".into()],
            },
        ))
        .unwrap();
        cat.invalidate(Path::new("/a")).unwrap();
        assert!(cat.indexes_for(Path::new("/a")).is_empty());
        assert_eq!(cat.indexes_for(Path::new("/b")).len(), 1);
    }

    /// The lost-update fix: N threads, each with its *own* `Catalog`
    /// instance on the same path (the exact load-modify-save shape two
    /// processes would have), register disjoint entries concurrently.
    /// Every entry must survive.
    #[test]
    fn concurrent_writers_lose_no_entries() {
        let path = tmp("stress");
        let _ = std::fs::remove_file(&path);
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 6;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = path.clone();
                scope.spawn(move || {
                    let cat = Catalog::open(&path).unwrap();
                    for i in 0..PER_WRITER {
                        cat.register(entry(
                            &format!("/data/w{w}-{i}.seq"),
                            IndexKind::Projection {
                                fields: vec!["url".into()],
                            },
                        ))
                        .unwrap();
                    }
                });
            }
        });
        let reopened = Catalog::open(&path).unwrap();
        assert_eq!(
            reopened.entries().len(),
            WRITERS * PER_WRITER,
            "concurrent registrations must merge, not clobber"
        );
    }

    /// A writer's in-memory view picks up entries other instances
    /// persisted, because every mutation re-reads disk under the lock.
    #[test]
    fn mutation_refreshes_from_disk() {
        let path = tmp("refresh");
        let _ = std::fs::remove_file(&path);
        let a = Catalog::open(&path).unwrap();
        let b = Catalog::open(&path).unwrap();
        a.register(entry(
            "/data/a.seq",
            IndexKind::Projection {
                fields: vec!["x".into()],
            },
        ))
        .unwrap();
        b.register(entry(
            "/data/b.seq",
            IndexKind::Projection {
                fields: vec!["y".into()],
            },
        ))
        .unwrap();
        // b merged a's entry in before writing its own.
        assert_eq!(b.entries().len(), 2);
        assert_eq!(Catalog::open(&path).unwrap().entries().len(), 2);
    }

    /// Saves go through tmp + rename: after a register, no tmp file
    /// lingers and the catalog parses.
    #[test]
    fn save_commits_by_rename() {
        let path = tmp("atomic");
        let _ = std::fs::remove_file(&path);
        let cat = Catalog::open(&path).unwrap();
        cat.register(entry(
            "/data/x.seq",
            IndexKind::Dict {
                fields: vec!["u".into()],
            },
        ))
        .unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        assert!(CatalogFile::parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
    }

    /// A corrupt catalog whose backup rename *fails* must surface a
    /// typed error instead of silently discarding it (the old
    /// `let _ = rename(...)` bug). Renaming a file over a non-empty
    /// directory fails on every Unix, which simulates the failure
    /// without permission games.
    #[test]
    fn failed_corrupt_backup_is_a_typed_error() {
        let path = tmp("badbackup");
        std::fs::write(&path, "this is not json").unwrap();
        let backup = path.with_extension("json.corrupt");
        let _ = std::fs::remove_file(&backup);
        let _ = std::fs::remove_dir_all(&backup);
        std::fs::create_dir_all(backup.join("occupied")).unwrap();
        let err = Catalog::open(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("backing it up") && msg.contains("also failed"),
            "{msg}"
        );
        std::fs::remove_dir_all(&backup).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    /// The recovery path itself still works when the rename can
    /// succeed: corrupt file moved aside, fresh catalog returned.
    #[test]
    fn corrupt_catalog_backed_up_and_opens_fresh() {
        let path = tmp("recover");
        let backup = path.with_extension("json.corrupt");
        let _ = std::fs::remove_file(&backup);
        std::fs::write(&path, "{ torn garbage").unwrap();
        let cat = Catalog::open(&path).unwrap();
        assert!(cat.entries().is_empty());
        assert!(backup.exists(), "bad file moved aside as evidence");
        assert!(!path.exists(), "original slot is clear until next save");
        let _ = std::fs::remove_file(&backup);
    }

    #[test]
    fn space_overhead_reported() {
        let e = entry(
            "/a",
            IndexKind::Projection {
                fields: vec!["x".into()],
            },
        );
        assert!((e.space_overhead() - 0.1).abs() < 1e-9);
    }
}

#[cfg(test)]
mod range_repr_tests {
    use super::*;

    #[test]
    fn bound_repr_roundtrip() {
        for b in [
            ScanBound::Unbounded,
            ScanBound::Incl(Value::Int(42)),
            ScanBound::Excl(Value::str("http://x")),
            ScanBound::Incl(Value::Double(2.5)),
        ] {
            let repr = BoundRepr::from_bound(&b).unwrap();
            assert_eq!(repr.to_bound().unwrap(), b);
        }
    }

    #[test]
    fn range_repr_json_roundtrip() {
        let r =
            RangeRepr::from_bounds(&ScanBound::Excl(Value::Int(1)), &ScanBound::Unbounded).unwrap();
        let json = r.to_json().to_string_compact();
        let back = RangeRepr::from_json(&mr_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
        let (lo, hi) = back.to_bounds().unwrap();
        assert_eq!(lo, ScanBound::Excl(Value::Int(1)));
        assert_eq!(hi, ScanBound::Unbounded);
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_path_rejected_not_corrupted() {
        use std::os::unix::ffi::OsStrExt;
        let bad = PathBuf::from(std::ffi::OsStr::from_bytes(b"/data/lo\xffgs.seq"));
        let entry = CatalogEntry {
            input_path: bad,
            index_path: PathBuf::from("/data/logs.seq.idx"),
            kind: IndexKind::Dict {
                fields: vec!["u".into()],
            },
            index_bytes: 1,
            input_bytes: 2,
        };
        let err = entry.to_json().unwrap_err();
        assert!(err.to_string().contains("invalid UTF-8"), "{err}");
    }

    #[test]
    fn bad_hex_rejected() {
        assert!(BoundRepr::Incl("zz".into()).to_bound().is_err());
        assert!(BoundRepr::Incl("abc".into()).to_bound().is_err());
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn index_kind_display_is_readable() {
        let kind = IndexKind::Selection {
            key: "value.rank".into(),
            covered: vec![RangeRepr::from_bounds(
                &ScanBound::Excl(Value::Int(90)),
                &ScanBound::Unbounded,
            )
            .unwrap()],
            projected_fields: Some(vec!["url".into(), "rank".into()]),
        };
        let text = kind.to_string();
        assert!(text.contains("selection B+Tree on value.rank"), "{text}");
        assert!(text.contains("storing [url, rank]"), "{text}");
        assert!(text.contains("(90, +inf)"), "{text}");

        assert_eq!(
            IndexKind::Dict {
                fields: vec!["u".into()]
            }
            .to_string(),
            "dictionary file on [u]"
        );
    }
}
