#!/usr/bin/env bash
# Reproduce the CI bench-regression gate locally.
#
# Runs the gated scale bins in --smoke mode (same flags as CI), drops
# their BENCH_*.json documents in a scratch directory, and compares
# them against the baselines committed at the repo root with the
# `bench_check` binary. Exits non-zero on a regression (throughput
# down >25%, or allocation counters up >25%, per row).
#
#   scripts/bench.sh                      # run the gate
#   MANIMAL_BENCH_REBASELINE=1 scripts/bench.sh
#                                         # accept current numbers as the
#                                         # new committed baselines
#
# The hotpath bin needs the counting allocator (--features bench-alloc)
# so its alloc_count / alloc_bytes columns are live; the other bins
# run without it. Extra smoke knobs (MANIMAL_RUNS, MANIMAL_SCALE)
# pass through.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$(mktemp -d "${TMPDIR:-/tmp}/manimal-bench.XXXXXX")"
trap 'rm -rf "$out"' EXIT
cd "$repo"

echo "== building bench bins =="
cargo build --release -p bench \
    --bin scale_shuffle --bin scale_combine --bin scale_compress --bin scale_service \
    --bin table_join
cargo build --release -p bench --features bench-alloc \
    --bin scale_hotpath --bin bench_check

echo "== running gated scale bins (--smoke) =="
cd "$out"
for bin in scale_shuffle scale_combine scale_compress scale_hotpath scale_service \
           table_join; do
    echo "-- $bin"
    "$repo/target/release/$bin" --smoke
done
cd "$repo"

echo "== bench gate =="
"$repo/target/release/bench_check" --baseline "$repo" --current "$out"
