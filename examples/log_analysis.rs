//! Log analysis: a date-windowed scan of a web-access log.
//!
//! This is the workload the paper's intro motivates ("simple selection
//! and aggregation of log file data") and the selection half of the
//! Pavlo join benchmark: count visits per destination URL within a
//! narrow date window. The window keeps well under 1% of the log, so
//! the B+Tree on `visitDate` turns a full scan into a tiny range read.
//!
//! ```sh
//! cargo run --release --example log_analysis
//! ```

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_ir::builder::FunctionBuilder;
use mr_ir::instr::{CmpOp, ParamId, SideEffectKind};
use mr_ir::Program;
use mr_workloads::data::{generate_uservisits, uservisits_schema, UserVisitsConfig};

fn main() {
    let dir = std::env::temp_dir().join("manimal-log-analysis");
    std::fs::create_dir_all(&dir).expect("workdir");

    // A year 2000 web-access log.
    let cfg = UserVisitsConfig {
        visits: 120_000,
        pages: 5_000,
        ..UserVisitsConfig::default()
    };
    let input = dir.join("access-log.seq");
    generate_uservisits(&input, &cfg).expect("generate log");

    // One day out of the year: ~0.27% of the log.
    let day = 86_400;
    let window_start = cfg.date_start + 200 * day;
    let window_end = window_start + day;

    // The analyst's program, written with the builder API this time —
    // note the debug log statement, which Manimal detects and is
    // allowed to skip (paper §2.2: side effects are "fair game").
    let mut b = FunctionBuilder::new("visits_in_window");
    let v = b.load_param(ParamId::Value);
    let date = b.get_field(v, "visitDate");
    b.side_effect(SideEffectKind::Log, vec![date]);
    let lo = b.const_int(window_start);
    let c1 = b.cmp(CmpOp::Ge, date, lo);
    let (next, exit) = (b.fresh_label("next"), b.fresh_label("exit"));
    b.br(c1, next, exit);
    b.bind(next);
    let hi = b.const_int(window_end);
    let c2 = b.cmp(CmpOp::Lt, date, hi);
    let (hit, exit2) = (b.fresh_label("hit"), b.fresh_label("exit2"));
    b.br(c2, hit, exit2);
    b.bind(hit);
    let url = b.get_field(v, "destURL");
    let one = b.const_int(1);
    b.emit(url, one);
    b.bind(exit2);
    b.ret();
    b.bind(exit);
    b.ret();
    let program = Program::new("visits-in-window", b.finish(), uservisits_schema());

    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);
    println!("--- analyzer report ---\n{}", submission.report);

    let baseline = manimal
        .execute_baseline(&submission, Arc::new(Builtin::Sum))
        .expect("baseline");
    manimal.build_indexes(&submission).expect("indexes");
    let optimized = manimal
        .execute(&submission, Arc::new(Builtin::Sum))
        .expect("optimized");

    assert_eq!(optimized.result.output, baseline.result.output);
    println!(
        "visits in window: {} distinct URLs, {} total",
        optimized.result.output.len(),
        optimized
            .result
            .output
            .iter()
            .map(|(_, v)| v.as_int().unwrap_or(0))
            .sum::<i64>()
    );
    println!(
        "full scan read {} records; index scan read {} ({:.2}%)",
        baseline.result.counters.map_invocations,
        optimized.result.counters.map_invocations,
        100.0 * optimized.result.counters.map_invocations as f64
            / baseline.result.counters.map_invocations.max(1) as f64,
    );
    println!(
        "wall clock: {:?} -> {:?} [{}]",
        baseline.result.elapsed,
        optimized.result.elapsed,
        optimized.applied.join(" + ")
    );
    println!(
        "note: {} log side effects were skipped by the index — run with\n\
         optimizer.safe_mode = true to refuse such plans",
        baseline.result.counters.side_effects - optimized.result.counters.side_effects
    );
}
