//! Inspect the analyzer: what Manimal sees in each benchmark program.
//!
//! Prints, for every Pavlo benchmark plus the paper's two didactic
//! examples (§2's optimizable map and Fig. 2's unoptimizable one), the
//! full analysis report — selection DNFs, index plans, projection
//! field sets, compression candidates and the precise reason for every
//! refusal.
//!
//! ```sh
//! cargo run --release --example inspect_analyzer
//! ```

use manimal::analyze;
use mr_ir::asm::parse_function;
use mr_ir::Program;
use mr_workloads::data::webpages_schema;
use mr_workloads::pavlo;

fn show(program: &Program) {
    println!("================================================================");
    println!("program: {}", program.name);
    println!("value schema: {}", program.value_schema);
    println!("\ncompiled map():\n{}", program.mapper);
    println!("\n{}", analyze(program));
}

fn main() {
    // The paper's §2 example.
    let section2 = Program::new(
        "paper-section2-example",
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              r4 = param key
              emit r4, r2
            exit:
              ret
            }
            "#,
        )
        .expect("parse"),
        webpages_schema(),
    );
    show(&section2);

    // The paper's Fig. 2: unsafe member-dependent control flow.
    let fig2 = Program::new(
        "paper-fig2-example",
        parse_function(
            r#"
            func map(key, value) {
              member numMapsRun = 0
              r0 = member numMapsRun
              r1 = const 1
              r2 = add r0, r1
              member numMapsRun = r2
              r3 = param value
              r4 = field r3.rank
              r5 = cmp gt r4, r1
              r6 = const 200
              r7 = cmp gt r2, r6
              r8 = or r5, r7
              br r8, t, e
            t:
              r9 = param key
              emit r9, r1
            e:
              ret
            }
            "#,
        )
        .expect("parse"),
        webpages_schema(),
    );
    show(&fig2);

    // The four Pavlo benchmarks.
    show(&pavlo::benchmark1(9997));
    show(&pavlo::benchmark2());
    show(&pavlo::benchmark3_rankings_mapper());
    show(&pavlo::benchmark3_visits_mapper(946_684_800, 946_771_200));
    show(&pavlo::benchmark4());
}
