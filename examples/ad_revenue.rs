//! Ad-revenue rollup: the Pavlo aggregation benchmark on Manimal.
//!
//! `SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP`
//! touches 2 of UserVisits' 9 fields, so the analyzer recommends a
//! combined projection+delta artifact: the unused seven fields vanish
//! from disk and `adRevenue` is stored as zig-zag varint deltas.
//!
//! ```sh
//! cargo run --release --example ad_revenue
//! ```

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo;

fn main() {
    let dir = std::env::temp_dir().join("manimal-ad-revenue");
    std::fs::create_dir_all(&dir).expect("workdir");

    let input = dir.join("uservisits.seq");
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits: 200_000,
            pages: 10_000,
            ..UserVisitsConfig::default()
        },
    )
    .expect("generate visits");
    let input_bytes = std::fs::metadata(&input).expect("meta").len();

    let program = pavlo::benchmark2();
    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);
    println!("--- analyzer report ---\n{}", submission.report);

    let baseline = manimal
        .execute_baseline(&submission, Arc::new(Builtin::Sum))
        .expect("baseline");

    let entries = manimal.build_indexes(&submission).expect("indexes");
    for e in &entries {
        println!(
            "artifact: {:?} — {} of {} bytes ({:.1}%)",
            e.kind,
            e.index_bytes,
            input_bytes,
            e.space_overhead() * 100.0
        );
    }

    let optimized = manimal
        .execute(&submission, Arc::new(Builtin::Sum))
        .expect("optimized");
    assert_eq!(optimized.result.output, baseline.result.output);

    // Top earners.
    let mut rows: Vec<_> = optimized.result.output.clone();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    println!("\ntop 5 source IPs by ad revenue:");
    for (ip, revenue) in rows.iter().take(5) {
        println!("  {ip}  {revenue}");
    }

    println!(
        "\nbytes read: {} -> {} ({:.1}x less)  [{}]",
        baseline.result.counters.input_bytes,
        optimized.result.counters.input_bytes,
        baseline.result.counters.input_bytes as f64
            / optimized.result.counters.input_bytes.max(1) as f64,
        optimized.applied.join(" + ")
    );
    println!(
        "wall clock: {:?} -> {:?}",
        baseline.result.elapsed, optimized.result.elapsed
    );
}
