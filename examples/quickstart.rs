//! Quickstart: the paper's §2 walkthrough, end to end.
//!
//! A user submits the compiled program
//! `void map(String k, WebPage v) { if (v.rank > 1) emit(k, 1); }`
//! plus an input file. Manimal analyzes it, the administrator approves
//! the recommended B+Tree, and the job runs via an index scan that
//! skips every non-emitting invocation — with output identical to the
//! unoptimized run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_ir::asm::parse_function;
use mr_ir::Program;
use mr_workloads::data::{generate_webpages, webpages_schema, WebPagesConfig};

fn main() {
    let dir = std::env::temp_dir().join("manimal-quickstart");
    std::fs::create_dir_all(&dir).expect("workdir");

    // 1. Some input data: 20k WebPages with uniform ranks in 0..100.
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: 20_000,
            content_size: 400,
            ..WebPagesConfig::default()
        },
    )
    .expect("generate data");
    println!(
        "input: {} ({} bytes)",
        input.display(),
        std::fs::metadata(&input).expect("meta").len()
    );

    // 2. The user's compiled program (MR-IR assembly stands in for Java
    //    bytecode). `rank > 90` keeps ~9% of records.
    let mapper = parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.rank
          r2 = const 90
          r3 = cmp gt r1, r2
          br r3, then, exit
        then:
          r4 = param key
          emit r4, r2
        exit:
          ret
        }
        "#,
    )
    .expect("parse program");
    let program = Program::new("quickstart", mapper, webpages_schema());

    // 3. Submit: the analyzer inspects the compiled code.
    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);
    println!("\n--- analyzer report ---\n{}", submission.report);
    for p in &submission.index_programs {
        println!("recommended index program: {p}");
    }

    // 4. Baseline run ("standard Hadoop"): full scan.
    let baseline = manimal
        .execute_baseline(&submission, Arc::new(Builtin::Count))
        .expect("baseline");
    println!(
        "\nbaseline : {} map invocations, {} bytes read, {:?}",
        baseline.result.counters.map_invocations,
        baseline.result.counters.input_bytes,
        baseline.result.elapsed
    );

    // 5. The administrator says yes; the index-generation MapReduce job
    //    builds the B+Tree.
    let entries = manimal.build_indexes(&submission).expect("build indexes");
    for e in &entries {
        println!(
            "built index: {} ({} bytes, {:.1}% of input)",
            e.index_path.display(),
            e.index_bytes,
            e.space_overhead() * 100.0
        );
    }

    // 6. Optimized run: the optimizer picks the B+Tree range scan.
    let optimized = manimal
        .execute(&submission, Arc::new(Builtin::Count))
        .expect("optimized");
    println!(
        "optimized: {} map invocations, {} bytes read, {:?}  [{}]",
        optimized.result.counters.map_invocations,
        optimized.result.counters.input_bytes,
        optimized.result.elapsed,
        optimized.applied.join(" + ")
    );

    // 7. The contract: identical output, much less work.
    assert_eq!(optimized.result.output, baseline.result.output);
    println!(
        "\noutput identical ({} groups); speedup {:.2}x, {:.1}x fewer map invocations",
        baseline.result.output.len(),
        baseline.result.elapsed.as_secs_f64() / optimized.result.elapsed.as_secs_f64(),
        baseline.result.counters.map_invocations as f64
            / optimized.result.counters.map_invocations.max(1) as f64
    );
}
