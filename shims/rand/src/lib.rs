//! A minimal, API-compatible stand-in for the `rand` crate.
//!
//! This workspace builds in an environment with no route to a crates
//! registry, so the subset of `rand` 0.8 the codebase uses —
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! and `rngs::StdRng` — is vendored here. The generator is
//! xoshiro256++ seeded through SplitMix64: fast, high-quality, and
//! fully deterministic for a given seed, which is what the workload
//! generators rely on for reproducible datasets.

use std::ops::Range;

/// The low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span ≤ 2^64 so one
                // 64-bit draw with rejection keeps it exact.
                let span64 = span as u64;
                let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
                loop {
                    let raw = rng.next_u64();
                    if raw <= zone {
                        return (self.start as i128 + (raw % span64) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly over its standard domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_width_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(5u8..6), 5);
        }
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
    }
}
