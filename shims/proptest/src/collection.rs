//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::deterministic("lengths_in_range");
        let s = vec(0i64..10, 1..24);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((1..24).contains(&v.len()), "len={}", v.len());
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn zero_length_allowed() {
        let mut rng = TestRng::deterministic("zero_length_allowed");
        let s = vec(0i64..10, 0..3);
        let mut seen_empty = false;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 3);
            seen_empty |= v.is_empty();
        }
        assert!(seen_empty);
    }
}
