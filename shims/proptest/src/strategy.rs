//! The [`Strategy`] trait and combinators.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, re-drawing otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Build recursive values: `recurse` maps a strategy for the
    /// current depth to a strategy one level deeper. The `depth`
    /// parameter bounds nesting; `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        // Expand eagerly: each application of `recurse` adds one
        // possible level of nesting above the leaf strategy.
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from the alternatives; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs an alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $method:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$method(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => range_u8,
    u16 => range_u16,
    u32 => range_u32,
    u64 => range_u64,
    usize => range_usize,
    i8 => range_i8,
    i16 => range_i16,
    i32 => range_i32,
    i64 => range_i64,
    isize => range_isize
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let s = (0u8..4, -50i64..50, 1usize..8);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((-50..50).contains(&b));
            assert!((1..8).contains(&c));
        }
    }

    #[test]
    fn map_just_union() {
        let mut rng = TestRng::deterministic("map_just_union");
        let s = crate::prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2),];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => u32::from(*v >= 0),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("recursion_bottoms_out");
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }
}
