//! A minimal, API-compatible stand-in for the `proptest` crate.
//!
//! This workspace builds in an environment with no route to a crates
//! registry, so the subset of `proptest` the test suites use is
//! vendored here: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive`, tuple/range/regex-literal strategies, the
//! `proptest!`, `prop_oneof!`, and `prop_assert*` macros, plus
//! `collection::vec` and `option::of`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its generated inputs
//!   verbatim instead of minimizing them.
//! - **Deterministic seeding.** Each test function derives its RNG
//!   seed from its own name, so failures reproduce across runs.
//! - **Regex strategies** support the subset used in-tree: literal
//!   characters, character classes with ranges, and the `{m,n}`,
//!   `{n}`, `*`, `+`, `?` repetition operators.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};

/// Declares property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    // Internal: config resolved, expand each test fn.
    (@expand ($cfg:expr)
     $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let values =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let values_dbg = format!("{:?}", values);
                    let ( $($pat,)+ ) = values;
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            values_dbg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current test case when the assumption does not hold.
///
/// The shim has no case-rejection accounting, so an assumption failure
/// simply passes the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
