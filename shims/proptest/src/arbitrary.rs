//! `any::<T>()` strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric values spanning many magnitudes;
        // no NaN/infinity so equality-based properties stay meaningful.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure output readable.
        char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
    }
}
