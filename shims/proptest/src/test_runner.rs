//! Test configuration, errors, and the deterministic RNG.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`], mirroring proptest's `Reject`.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies.
///
/// Seeded from the test function's name (FNV-1a), so every run of a
/// given test draws the same case sequence and failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform index in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform f64 draw from the range.
    pub fn range_f64(&mut self, r: Range<f64>) -> f64 {
        self.inner.gen_range(r)
    }
}

macro_rules! impl_rng_range {
    ($($method:ident => $t:ty),*) => {
        impl TestRng {
            $(
                /// Uniform draw from the range.
                pub fn $method(&mut self, r: Range<$t>) -> $t {
                    self.inner.gen_range(r)
                }
            )*
        }
    };
}

impl_rng_range!(
    range_u8 => u8,
    range_u16 => u16,
    range_u32 => u32,
    range_u64 => u64,
    range_usize => usize,
    range_i8 => i8,
    range_i16 => i16,
    range_i32 => i32,
    range_i64 => i64,
    range_isize => isize
);
