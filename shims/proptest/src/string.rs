//! String generation from a regex subset.
//!
//! Supports what the in-tree tests use: literal characters, character
//! classes with ranges (`[a-zA-Z0-9:/. -]`), and the repetition
//! operators `{m,n}`, `{n}`, `*`, `+`, `?` (unbounded operators are
//! capped at 8 repetitions).

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let pieces =
        parse(pattern).unwrap_or_else(|e| panic!("unsupported regex strategy {pattern:?}: {e}"));
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + (rng.below((piece.max - piece.min + 1) as usize) as u32)
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total as usize) as u32;
            for (lo, hi) in ranges {
                let width = *hi as u32 - *lo as u32 + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick).expect("valid char range");
                }
                pick -= width;
            }
            unreachable!("pick < total")
        }
    }
}

fn parse(pattern: &str) -> Result<Vec<Piece>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1)?;
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).ok_or("dangling escape")?;
                i += 1;
                Atom::Literal(c)
            }
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            c @ ('*' | '+' | '?' | '{' | '}' | ']' | '(' | ')' | '|') => {
                return Err(format!("unsupported metacharacter {c:?}"));
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_repeat(&chars, i)?;
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    Ok(pieces)
}

fn parse_class(chars: &[char], mut i: usize) -> Result<(Atom, usize), String> {
    let mut ranges = Vec::new();
    if chars.get(i) == Some(&'^') {
        return Err("negated classes are unsupported".into());
    }
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            *chars.get(i).ok_or("dangling escape in class")?
        } else {
            chars[i]
        };
        i += 1;
        // `a-z` is a range unless the '-' is the final class character.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|c| *c != ']') {
            let hi = chars[i + 1];
            if hi < lo {
                return Err(format!("inverted range {lo}-{hi}"));
            }
            ranges.push((lo, hi));
            i += 2;
        } else {
            ranges.push((lo, lo));
        }
    }
    if i >= chars.len() {
        return Err("unterminated character class".into());
    }
    Ok((Atom::Class(ranges), i + 1))
}

fn parse_repeat(chars: &[char], i: usize) -> Result<(u32, u32, usize), String> {
    match chars.get(i) {
        Some('*') => Ok((0, UNBOUNDED_CAP, i + 1)),
        Some('+') => Ok((1, UNBOUNDED_CAP, i + 1)),
        Some('?') => Ok((0, 1, i + 1)),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .ok_or("unterminated {} repetition")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().map_err(|_| "bad repetition bound")?,
                    hi.trim().parse().map_err(|_| "bad repetition bound")?,
                ),
                None => {
                    let n: u32 = body.trim().parse().map_err(|_| "bad repetition count")?;
                    (n, n)
                }
            };
            if max < min {
                return Err("inverted repetition bounds".into());
            }
            Ok((min, max, close + 1))
        }
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_bounds() {
        let mut rng = TestRng::deterministic("classes_and_bounds");
        for _ in 0..300 {
            let s = generate_from_regex("[a-c]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let one = generate_from_regex("[xy]", &mut rng);
            assert!(one == "x" || one == "y");

            let mixed = generate_from_regex("[a-zA-Z0-9:/. -]{0,40}", &mut rng);
            assert!(mixed.len() <= 40);
            assert!(
                mixed
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || ":/. -".contains(c)),
                "{mixed:?}"
            );
        }
    }

    #[test]
    fn literals_and_operators() {
        let mut rng = TestRng::deterministic("literals_and_operators");
        assert_eq!(generate_from_regex("abc", &mut rng), "abc");
        for _ in 0..100 {
            let s = generate_from_regex("a[01]+b?", &mut rng);
            assert!(s.starts_with('a'), "{s:?}");
        }
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::deterministic("exact_count");
        assert_eq!(generate_from_regex("[z]{3}", &mut rng), "zzz");
    }
}
