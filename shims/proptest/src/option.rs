//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four, `None` otherwise (matching real
/// proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::deterministic("yields_both_variants");
        let s = of(0i64..10);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }
}
