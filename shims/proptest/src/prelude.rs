//! The usual imports, mirroring `proptest::prelude`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace alias so `prop::collection::vec` etc. resolve.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}
