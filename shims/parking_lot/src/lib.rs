//! A minimal, API-compatible stand-in for the `parking_lot` crate.
//!
//! This workspace builds in an environment with no route to a crates
//! registry, so the subset of `parking_lot` the codebase actually uses
//! (`Mutex`/`RwLock` with panic-free, non-poisoning `lock()`) is
//! vendored here over `std::sync`. Poisoned std locks are recovered
//! transparently, matching `parking_lot`'s no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive; `lock()` returns the guard directly
/// (no `Result`), like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
