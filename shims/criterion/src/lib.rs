//! A minimal, API-compatible stand-in for the `criterion` crate.
//!
//! This workspace builds in an environment with no route to a crates
//! registry, so the subset of criterion the bench targets use is
//! vendored here: `Criterion::{bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! batches until a time budget is exhausted and reports the median
//! batch's per-iteration time (plus derived throughput). There is no
//! statistical analysis, HTML report, or baseline comparison. Passing
//! `--quick` (or setting `CRITERION_SHIM_QUICK=1`) runs every routine
//! once — that is what CI's smoke job uses.

use std::time::{Duration, Instant};

/// How batched setup cost is amortized; accepted for API
/// compatibility, the shim always re-runs setup per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-run for every iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed iterations per batch.
    NumIterations(u64),
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units).
    BytesDecimal(u64),
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick" || a == "--test")
            || std::env::var("CRITERION_SHIM_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(300),
            quick,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            quick: self.quick,
            result: None,
        };
        f(&mut b);
        report(name, None, b.result);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<'a>(&'a mut self, name: &str) -> BenchmarkGroup<'a> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            quick: self.criterion.quick,
            result: None,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            self.throughput,
            b.result,
        );
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    quick: bool,
    result: Option<Duration>,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.quick {
            std::hint::black_box(routine());
            self.result = Some(Duration::ZERO);
            return;
        }
        // Warm up and learn an iteration count that makes one batch
        // last roughly a millisecond.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let s = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(s.elapsed() / batch as u32);
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }

    /// Time a routine whose input is rebuilt by `setup` outside the
    /// measured region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            std::hint::black_box(routine(setup()));
            self.result = Some(Duration::ZERO);
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine(setup()));
        }
        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let input = setup();
            let s = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(s.elapsed());
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn report(name: &str, throughput: Option<Throughput>, result: Option<Duration>) {
    let Some(t) = result else {
        println!("{name:<40} (no measurement)");
        return;
    };
    if t.is_zero() {
        println!("{name:<40} ok (quick)");
        return;
    }
    let ns = t.as_nanos() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.2} MiB/s", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        Some(Throughput::BytesDecimal(n)) => {
            format!("  {:>12.2} MB/s", n as f64 * 1e9 / ns / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<40} {:>12.1} ns/iter{rate}", ns);
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            quick: true,
        };
        let mut calls = 0;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_measure() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            quick: false,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        g.finish();
    }
}
